"""Command-line interface: ``python -m repro`` / the ``repro`` script.

Subcommands:

* ``list`` — registered experiments.
* ``run <exp_id ...>`` — reproduce figures/tables at a chosen scale; prints
  an ASCII plot + value table per figure, optionally exports CSV/JSON.
* ``run-scenario <file.json>`` — execute a declarative scenario file
  (see :mod:`repro.scenarios`) and print its metric tables; ``--engine
  ode`` runs it on the analytic surrogate behind the cross-validation
  gate.
* ``trace <kind>`` — generate a mobility trace file (canonical format).
* ``stats <file>`` — contact statistics of a trace file.
* ``docs protocols`` — regenerate (or ``--check``) the generated protocol
  reference in ``docs/protocols.md``.

The global ``--jobs N`` flag (accepted before or after the subcommand)
fans sweep grids out over N worker processes; results are bit-identical
to a serial run.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import re
import sys
import time
from pathlib import Path

from repro.analysis.ascii_plot import render_plot, render_series_table
from repro.analysis.figures import FigureData
from repro.analysis.io import write_runs_csv, write_series_csv, write_series_json
from repro.core.executors import ON_ERROR_MODES, make_executor
from repro.core.policies import drop_policy_names
from repro.core.simulation import ENGINES, KERNELS
from repro.experiments.registry import get_experiment, iter_experiments
from repro.experiments.runner import SCALES, ExperimentRunner
from repro.faults import STATE_LOSS_MODES, FaultSpec
from repro.mobility.rwp import ClassicRWP, ClassicRWPConfig, RWPConfig, SubscriberPointRWP
from repro.mobility.stats import compute_trace_stats
from repro.mobility.trajectory import CONTACT_ENGINES
from repro.mobility.synthetic import CampusTraceConfig, CampusTraceGenerator
from repro.mobility.trace_file import read_contact_trace, write_contact_trace
from repro.scenarios import ScenarioSpec


def _cmd_list(_: argparse.Namespace) -> int:
    for exp in iter_experiments():
        print(f"{exp.exp_id:<8} [{exp.kind}]  {exp.title}")
        print(f"         {exp.description}")
    return 0


def _progress_printer(verbose: bool):
    if not verbose:
        return None
    return lambda msg: print(f"  .. {msg}", file=sys.stderr)


def _cmd_run(args: argparse.Namespace) -> int:
    runner = ExperimentRunner(
        scale=args.scale,
        seed=args.seed,
        progress=_progress_printer(args.verbose),
        executor=make_executor(args.jobs),
    )
    exp_ids = args.experiments
    if exp_ids == ["all"]:
        exp_ids = [e.exp_id for e in iter_experiments()]
    out_dir = Path(args.out) if args.out else None
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
    for exp_id in exp_ids:
        exp = get_experiment(exp_id)
        t0 = time.perf_counter()
        artefact = exp.build(runner)
        elapsed = time.perf_counter() - t0
        print(f"==== {exp.title} ({elapsed:.1f}s) ====")
        if isinstance(artefact, FigureData):
            print(render_plot(artefact.series, title="", y_label=artefact.y_label))
            print()
            print(render_series_table(artefact.series))
            if out_dir is not None:
                write_series_csv(artefact.series, out_dir / f"{exp_id}.csv")
                write_series_json(
                    artefact.series,
                    out_dir / f"{exp_id}.json",
                    meta={
                        "experiment": exp_id,
                        "title": exp.title,
                        "metric": artefact.metric,
                        "scale": runner.scale.name,
                        "seed": runner.seed,
                    },
                )
        else:
            print(artefact)
            if out_dir is not None:
                (out_dir / f"{exp_id}.txt").write_text(artefact + "\n", encoding="utf-8")
        print()
    return 0


#: (title, SweepResult aggregation method) pairs printed by run-scenario.
_SCENARIO_METRICS = (
    ("Delivery ratio", "delivery_ratio_series"),
    ("Average delay (s)", "delay_series"),
    ("Buffer occupancy", "buffer_occupancy_series"),
    ("Duplication rate", "duplication_series"),
)


def _gate_lines(report: dict[str, object]) -> list[str]:
    """Compact rendering of a surrogate cross-validation report dict."""
    lines = [
        f"surrogate gate: PASS (reference loads={report['loads']}, "
        f"replications={report['replications']})"
    ]
    pooled = report.get("pooled")
    for row in pooled if isinstance(pooled, list) else ():
        err = row["rel_error"]
        floor = row["noise_floor"]
        lines.append(
            f"  {row['protocol']}/{row['metric']}: "
            + ("err n/a" if err is None else f"err {err:.1%}")
            + ("" if floor is None else f" (DES noise 2·SEM {floor:.1%})")
        )
    return lines


def _cmd_run_scenario(args: argparse.Namespace) -> int:
    from repro.analytic.calibration import SurrogateAccuracyError
    from repro.core.checkpoint import CheckpointError
    from repro.core.executors import CellExecutionError

    if args.resume and args.checkpoint is None:
        print("error: --resume requires --checkpoint DIR", file=sys.stderr)
        return 2
    spec = ScenarioSpec.load(args.file)
    overrides: dict[str, object] = {}
    if args.drop_policy is not None:
        overrides["drop_policy"] = args.drop_policy
    if args.buffer_capacity is not None:
        overrides["buffer_capacity"] = args.buffer_capacity
    if args.record_occupancy:
        overrides["record_occupancy"] = True
    if args.engine is not None:
        overrides["engine"] = args.engine
    if args.kernel is not None:
        overrides["kernel"] = args.kernel
    if args.no_surrogate_check:
        overrides["surrogate_check"] = False
    if args.retries is not None:
        overrides["retries"] = args.retries
    if args.cell_timeout is not None:
        overrides["cell_timeout"] = args.cell_timeout
    if args.on_error is not None:
        overrides["on_error"] = args.on_error
    fault_overrides: dict[str, object] = {}
    if args.churn_rate is not None:
        fault_overrides["churn_rate"] = args.churn_rate
    if args.mean_downtime is not None:
        fault_overrides["mean_downtime"] = args.mean_downtime
    if args.link_loss is not None:
        fault_overrides["contact_drop_prob"] = args.link_loss
    if args.state_loss is not None:
        fault_overrides["state_loss"] = args.state_loss
    if fault_overrides:
        base_faults = spec.faults or FaultSpec()
        try:
            overrides["faults"] = dataclasses.replace(base_faults, **fault_overrides)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if overrides:
        try:
            spec = dataclasses.replace(spec, **overrides)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    label = spec.name or Path(args.file).stem
    t0 = time.perf_counter()
    try:
        result = spec.run(
            jobs=args.jobs if args.jobs > 1 else None,
            progress=_progress_printer(args.verbose),
            checkpoint=args.checkpoint,
            resume=args.resume,
        )
    except SurrogateAccuracyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        print(
            "hint: the surrogate is not trustworthy on this scenario's "
            "reference grid; run it with the event engine (--engine des), "
            "raise replications to shrink the DES noise floor, or — to "
            "proceed unanchored — pass --no-surrogate-check",
            file=sys.stderr,
        )
        return 1
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except CellExecutionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        print(
            "hint: completed cells are preserved when --checkpoint DIR is "
            "set — re-run with --resume to continue; add --retries N for "
            "transient worker deaths, or --on-error keep-going to record "
            "failures and finish the rest of the grid",
            file=sys.stderr,
        )
        return 1
    elapsed = time.perf_counter() - t0
    print(
        f"==== scenario {label}: {len(result)} runs, "
        f"{len(spec.protocols)} protocols, jobs={args.jobs} ({elapsed:.1f}s) ===="
    )
    if result.surrogate_report is not None:
        for line in _gate_lines(result.surrogate_report):
            print(line)
    if result.failures:
        total_cells = len(result.runs) + len(result.failures)
        print(
            f"warning: {len(result.failures)}/{total_cells} cells failed "
            "(on_error=keep-going); tables below aggregate the surviving "
            "runs, with all-failed loads shown as gaps",
            file=sys.stderr,
        )
        for failure in result.failures:
            print(
                f"  FAILED {failure.protocol_label}: load={failure.load} "
                f"rep={failure.rep} [{failure.kind}] after "
                f"{failure.attempts} attempt(s): {failure.message}",
                file=sys.stderr,
            )
    tables = [
        (title, method.removesuffix("_series"), getattr(result, method)())
        for title, method in _SCENARIO_METRICS
    ]
    for title, _, series in tables:
        print()
        print(f"-- {title} --")
        print(render_series_table(series))
    if args.out is not None:
        out_dir = Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        # free-form scenario names must not escape out_dir or break paths
        stem = re.sub(r"[^\w.-]+", "_", label) or "scenario"
        if result.runs:
            write_runs_csv(result, out_dir / f"{stem}_runs.csv")
        if result.failures:
            from repro.ioutil import atomic_write_text

            payload = json.dumps(
                [dataclasses.asdict(f) for f in result.failures], indent=2
            )
            atomic_write_text(out_dir / f"{stem}_failures.json", payload + "\n")
        if spec.record_occupancy:
            payload = [
                {
                    "protocol": run.protocol,
                    "protocol_label": run.protocol_label,
                    "load": run.load,
                    "seed": run.seed,
                    "occupancy_series": [list(p) for p in run.occupancy_series or ()],
                }
                for run in result.runs
            ]
            occ_path = out_dir / f"{stem}_occupancy.json"
            occ_path.write_text(
                json.dumps(payload, indent=2) + "\n", encoding="utf-8"
            )
        for _, metric, series in tables:
            write_series_json(
                series,
                out_dir / f"{stem}_{metric}.json",
                meta={
                    "scenario": label,
                    "metric": metric,
                    "seed": spec.seed,
                    "loads": list(spec.workload.loads),
                    "replications": spec.workload.replications,
                },
            )
        print(f"\nexports written to {out_dir}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    engine = args.engine or "fast"
    if args.kind == "campus":
        if args.engine is not None:
            print(
                "error: --engine applies to the trajectory-based kinds only "
                "(campus draws contacts directly)",
                file=sys.stderr,
            )
            return 2
        cfg = CampusTraceConfig(num_nodes=args.nodes)
        trace = CampusTraceGenerator(cfg, seed=args.seed).generate()
    elif args.kind == "rwp":
        trace = SubscriberPointRWP(
            RWPConfig(num_nodes=args.nodes, engine=engine), seed=args.seed
        ).generate()
    elif args.kind == "classic-rwp":
        trace = ClassicRWP(
            ClassicRWPConfig(num_nodes=args.nodes, engine=engine), seed=args.seed
        ).generate()
    else:  # pragma: no cover - argparse choices guard this
        raise AssertionError(args.kind)
    write_contact_trace(trace, args.out)
    st = compute_trace_stats(trace)
    print(
        f"wrote {args.out}: {st.num_contacts} contacts, {st.num_nodes} nodes, "
        f"horizon {st.horizon:.0f}s"
    )
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    # tools/ ships alongside src/ in the repo checkout, not in the
    # installed package — resolve it lazily and fail with guidance.
    try:
        from tools.lintkit.engine import run_cli as lint_cli
    except ImportError:
        print(
            "error: reprolint (tools/lintkit) is not importable — run from "
            "the repository root (`python -m tools.lintkit` needs tools/ on "
            "sys.path)",
            file=sys.stderr,
        )
        return 2
    forward = list(args.paths)
    if args.list_rules:
        forward.append("--list-rules")
    if args.strict:
        forward.append("--strict")
    if args.format != "text":
        forward.extend(["--format", args.format])
    for rule in args.rule or ():
        forward.extend(["--rule", rule])
    return lint_cli(forward)


def _cmd_docs(args: argparse.Namespace) -> int:
    # tools/ ships alongside src/ in the repo checkout, not in the
    # installed package — resolve it lazily and fail with guidance.
    try:
        from tools.gen_protocol_docs import run_cli as docs_cli
    except ImportError:
        print(
            "error: the docs generator (tools/gen_protocol_docs.py) is not "
            "importable — run from the repository root (it needs tools/ on "
            "sys.path)",
            file=sys.stderr,
        )
        return 2
    forward: list[str] = []
    if args.check:
        forward.append("--check")
    if args.out is not None:
        forward.extend(["--out", args.out])
    return docs_cli(forward)


def _cmd_stats(args: argparse.Namespace) -> int:
    trace = read_contact_trace(args.file)
    st = compute_trace_stats(trace)
    for key, value in st.as_dict().items():
        print(f"{key:>28}: {value:.4g}" if isinstance(value, float) else f"{key:>28}: {value}")
    return 0


def _jobs_count(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def _retries_count(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError("must be >= 0")
    return value


def _timeout_seconds(text: str) -> float:
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError("must be positive")
    return value


def _rate_arg(text: str) -> float:
    value = float(text)
    if value < 0:
        raise argparse.ArgumentTypeError("must be >= 0")
    return value


def _probability_arg(text: str) -> float:
    value = float(text)
    if not 0.0 <= value <= 1.0:
        raise argparse.ArgumentTypeError("must be a probability in [0, 1]")
    return value


def _capacity_arg(text: str) -> int | tuple[int, ...]:
    """Parse ``--buffer-capacity``: one int, or a per-node comma list."""
    try:
        parts = tuple(int(p) for p in text.split(","))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or comma-separated integers, got {text!r}"
        ) from None
    if any(p < 1 for p in parts):
        raise argparse.ArgumentTypeError("capacities must be >= 1")
    return parts[0] if len(parts) == 1 else parts


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Unified study of epidemic routing protocols (Feng & Chin, IPDPSW 2012)",
    )
    parser.add_argument(
        "--jobs",
        type=_jobs_count,
        default=1,
        metavar="N",
        help="worker processes for sweep grids (default: 1 = serial)",
    )
    # Subparsers re-declare --jobs with SUPPRESS so `repro run x --jobs 2`
    # works too without clobbering a value given before the subcommand.
    jobs_opt = argparse.ArgumentParser(add_help=False)
    jobs_opt.add_argument(
        "--jobs",
        type=_jobs_count,
        default=argparse.SUPPRESS,
        metavar="N",
        help=argparse.SUPPRESS,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list registered experiments")
    p_list.set_defaults(func=_cmd_list)

    p_run = sub.add_parser("run", help="reproduce figures/tables", parents=[jobs_opt])
    p_run.add_argument(
        "experiments",
        nargs="+",
        help="experiment ids (see `repro list`) or 'all'",
    )
    p_run.add_argument(
        "--scale", choices=sorted(SCALES), default="quick", help="sweep grid size"
    )
    p_run.add_argument("--seed", type=int, default=7, help="master seed")
    p_run.add_argument("--out", default=None, help="directory for CSV/JSON exports")
    p_run.add_argument("--verbose", action="store_true", help="progress on stderr")
    p_run.set_defaults(func=_cmd_run)

    p_scenario = sub.add_parser(
        "run-scenario",
        help="execute a declarative scenario file (JSON)",
        parents=[jobs_opt],
    )
    p_scenario.add_argument("file", help="scenario JSON (see repro.scenarios)")
    p_scenario.add_argument("--out", default=None, help="directory for CSV/JSON exports")
    p_scenario.add_argument("--verbose", action="store_true", help="progress on stderr")
    p_scenario.add_argument(
        "--drop-policy",
        choices=drop_policy_names(),
        default=None,
        help="override the scenario's buffer drop policy",
    )
    p_scenario.add_argument(
        "--buffer-capacity",
        type=_capacity_arg,
        default=None,
        metavar="N[,N...]",
        help="override relay capacity: one value, or a per-node comma list",
    )
    p_scenario.add_argument(
        "--record-occupancy",
        action="store_true",
        help="record the per-change (time, fill) occupancy series in every "
        "run result (exported as <name>_occupancy.json with --out)",
    )
    p_scenario.add_argument(
        "--engine",
        choices=ENGINES,
        default=None,
        help="override the scenario's engine: des = event simulator, "
        "ode = analytic mean-field surrogate (cross-validated against a "
        "small DES reference grid before running)",
    )
    p_scenario.add_argument(
        "--kernel",
        choices=KERNELS,
        default=None,
        help="override the DES execution kernel: auto = array-resident "
        "contact-sweep kernel when the cell qualifies (event fallback "
        "otherwise), event = classic per-event path, soa = force the sweep "
        "kernel and fail fast when a cell cannot run on it; results are "
        "byte-identical either way",
    )
    p_scenario.add_argument(
        "--no-surrogate-check",
        action="store_true",
        help="skip the surrogate cross-validation gate (engine=ode runs "
        "unanchored; the report is omitted)",
    )
    p_scenario.add_argument(
        "--checkpoint",
        default=None,
        metavar="DIR",
        help="campaign directory for crash-safe per-cell journaling: each "
        "completed cell is durably appended, so a killed campaign can be "
        "continued with --resume instead of re-running from scratch",
    )
    p_scenario.add_argument(
        "--resume",
        action="store_true",
        help="continue the campaign journaled in --checkpoint DIR: "
        "journaled cells are restored bit-identically from disk and only "
        "the missing cells execute",
    )
    p_scenario.add_argument(
        "--retries",
        type=_retries_count,
        default=None,
        metavar="N",
        help="override the scenario's retry budget for cells interrupted "
        "by a transient worker-process death",
    )
    p_scenario.add_argument(
        "--cell-timeout",
        type=_timeout_seconds,
        default=None,
        metavar="SECONDS",
        help="override the scenario's per-cell wall-clock budget; a hung "
        "cell is declared failed and its worker reclaimed (parallel only)",
    )
    p_scenario.add_argument(
        "--on-error",
        choices=ON_ERROR_MODES,
        default=None,
        help="override the scenario's failure mode: abort = stop at the "
        "first permanently failed cell; keep-going = record it and finish "
        "the rest of the grid",
    )
    p_scenario.add_argument(
        "--churn-rate",
        type=_rate_arg,
        default=None,
        metavar="RATE",
        help="override the fault model's node crash intensity (crashes per "
        "node per second of up-time; requires a positive mean downtime)",
    )
    p_scenario.add_argument(
        "--mean-downtime",
        type=_rate_arg,
        default=None,
        metavar="SECONDS",
        help="override the fault model's mean repair time after a crash",
    )
    p_scenario.add_argument(
        "--link-loss",
        type=_probability_arg,
        default=None,
        metavar="PROB",
        help="override the fault model's per-contact drop probability",
    )
    p_scenario.add_argument(
        "--state-loss",
        choices=STATE_LOSS_MODES,
        default=None,
        help="override what a rebooting node forgets: none = full state "
        "survives, buffer = stored copies are lost, knowledge = delivery "
        "knowledge (i-lists / anti-packet tables) is lost, all = both",
    )
    p_scenario.set_defaults(func=_cmd_run_scenario)

    p_trace = sub.add_parser("trace", help="generate a mobility trace file")
    p_trace.add_argument("kind", choices=["campus", "rwp", "classic-rwp"])
    p_trace.add_argument("--seed", type=int, default=7)
    p_trace.add_argument(
        "--nodes",
        type=int,
        default=12,
        help="population size (default: paper's 12)",
    )
    p_trace.add_argument(
        "--engine",
        choices=sorted(CONTACT_ENGINES),
        default=None,
        help="contact-extraction engine for rwp/classic-rwp "
        "(fast = vectorized default, exact = scalar reference; "
        "identical output)",
    )
    p_trace.add_argument("--out", required=True, help="output path")
    p_trace.set_defaults(func=_cmd_trace)

    p_stats = sub.add_parser("stats", help="contact statistics of a trace file")
    p_stats.add_argument("file")
    p_stats.set_defaults(func=_cmd_stats)

    p_docs = sub.add_parser(
        "docs",
        help="regenerate or verify generated documentation",
    )
    docs_sub = p_docs.add_subparsers(dest="target", required=True)
    p_docs_protocols = docs_sub.add_parser(
        "protocols",
        help="the protocol reference generated from the registry "
        "(docs/protocols.md)",
    )
    p_docs_protocols.add_argument(
        "--check",
        action="store_true",
        help="verify the committed file is up to date instead of writing "
        "(exit 1 when stale — the CI freshness gate)",
    )
    p_docs_protocols.add_argument(
        "--out",
        default=None,
        help="write to this path instead of docs/protocols.md",
    )
    p_docs_protocols.set_defaults(func=_cmd_docs)

    p_lint = sub.add_parser(
        "lint",
        help="run reprolint (determinism & hot-path static analysis)",
    )
    p_lint.add_argument(
        "paths",
        nargs="*",
        default=["src", "tools"],
        help="files or directories to lint (default: src tools)",
    )
    p_lint.add_argument("--format", choices=("text", "json"), default="text")
    p_lint.add_argument("--list-rules", action="store_true")
    p_lint.add_argument("--strict", action="store_true")
    p_lint.add_argument("--rule", action="append", default=None, metavar="ID")
    p_lint.set_defaults(func=_cmd_lint)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
