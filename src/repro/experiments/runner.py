"""Experiment execution: scenario tables, mobility cache, sweep cache.

The paper's figures reuse a handful of (mobility × protocol family) sweeps.
Each is described *declaratively*: :data:`MOBILITY_PRESETS` names the
mobility inputs, :data:`PROTOCOL_FAMILIES` the protocol sets, and
:data:`SWEEP_FAMILIES` pairs them. The runner materialises a
:class:`~repro.scenarios.ScenarioSpec` per family, executes it once per
(scale, seed) on its execution backend, and hands cached
:class:`~repro.core.results.SweepResult` objects to the figure builders.

Adding a new study is data, not code: register a mobility kind
(:func:`repro.scenarios.register_mobility`) if needed, then add entries to
the tables below — no ``if``/``elif`` chain to extend.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

from repro.core.executors import Executor
from repro.core.protocols.registry import ProtocolConfig
from repro.core.results import SweepResult
from repro.core.sweep import run_sweep
from repro.core.workload import PAPER_LOADS, PAPER_REPLICATIONS
from repro.mobility.contact import ContactTrace
from repro.scenarios import MobilitySpec, ProtocolSpec, ScenarioSpec, WorkloadSpec


@dataclass(frozen=True)
class Scale:
    """Sweep grid size."""

    name: str
    loads: tuple[int, ...]
    replications: int


SCALES: dict[str, Scale] = {
    "smoke": Scale("smoke", (5, 15), 1),
    "quick": Scale("quick", (5, 20, 35, 50), 3),
    "paper": Scale("paper", PAPER_LOADS, PAPER_REPLICATIONS),
}

# ----------------------------------------------------------- protocol families

#: label constants used across figure definitions (must match config labels)
PQ_LABEL = "P-Q epidemic (P=1, Q=1)"
TTL_LABEL = "Epidemic with TTL=300"
EC_LABEL = "Epidemic with EC"
IMMUNITY_LABEL = "Epidemic with immunity"
DYN_TTL_LABEL = "Epidemic with dynamic TTL (x2)"
EC_TTL_LABEL = "Epidemic with EC+TTL (thr=8)"
CUMULATIVE_LABEL = "Epidemic with cumulative immunity"

#: Protocol families, as declarative specs (paper parameterisation).
PROTOCOL_FAMILIES: dict[str, tuple[ProtocolSpec, ...]] = {
    "baselines": (
        ProtocolSpec("pq", {"p": 1.0, "q": 1.0}),
        ProtocolSpec("ttl", {"ttl": 300.0}),
        ProtocolSpec("ec"),
        ProtocolSpec("immunity"),
    ),
    "enhanced": (
        ProtocolSpec("ttl", {"ttl": 300.0}),
        ProtocolSpec("dynamic_ttl"),
        ProtocolSpec("ec"),
        ProtocolSpec("ec_ttl"),
        ProtocolSpec("immunity"),
        ProtocolSpec("cumulative_immunity"),
    ),
    "ttl": (
        ProtocolSpec("ttl", {"ttl": 300.0}),
        ProtocolSpec("dynamic_ttl"),
    ),
}

#: Named mobility inputs the paper's figures draw on.
MOBILITY_PRESETS: dict[str, MobilitySpec] = {
    "campus": MobilitySpec("campus"),
    "rwp": MobilitySpec("rwp"),
    "interval400": MobilitySpec("interval", {"max_interval": 400.0}),
    "interval2000": MobilitySpec("interval", {"max_interval": 2000.0}),
}

#: Sweep family → (mobility preset, protocol family).
SWEEP_FAMILIES: dict[str, tuple[str, str]] = {
    "baselines_trace": ("campus", "baselines"),
    "baselines_rwp": ("rwp", "baselines"),
    "enhanced_trace": ("campus", "enhanced"),
    "enhanced_rwp": ("rwp", "enhanced"),
    "ttl_interval400": ("interval400", "ttl"),
    "ttl_interval2000": ("interval2000", "ttl"),
}


def _family_configs(family: str) -> list[ProtocolConfig]:
    return [spec.build() for spec in PROTOCOL_FAMILIES[family]]


def baseline_protocols() -> list[ProtocolConfig]:
    """The four baselines, parameterised as the paper's figures use them
    (P=Q=1 best-delay setting, TTL=300 s)."""
    return _family_configs("baselines")


def enhanced_protocols() -> list[ProtocolConfig]:
    """Enhancements and their unmodified counterparts (Figs 15-20)."""
    return _family_configs("enhanced")


def ttl_family() -> list[ProtocolConfig]:
    """Constant vs dynamic TTL (the interval-scenario curves)."""
    return _family_configs("ttl")


class ExperimentRunner:
    """Executes and caches the sweeps behind every registered experiment."""

    def __init__(
        self,
        *,
        scale: str | Scale = "quick",
        seed: int = 7,
        progress: Callable[[str], None] | None = None,
        executor: Executor | None = None,
    ) -> None:
        self.scale = scale if isinstance(scale, Scale) else SCALES[scale]
        self.seed = seed
        self.progress = progress
        self.executor = executor
        self._traces: dict[str, ContactTrace] = {}
        self._sweeps: dict[tuple[str, str], SweepResult] = {}

    # ------------------------------------------------------------- mobility

    def mobility_spec(self, kind: str) -> MobilitySpec:
        """The :class:`MobilitySpec` behind ``kind``.

        Preset names (:data:`MOBILITY_PRESETS`: ``campus``, ``rwp``,
        ``interval400``, ``interval2000``) resolve first; any other string
        is treated as a raw mobility-registry kind with default parameters,
        so registered user mobilities work here with no further wiring.
        """
        preset = MOBILITY_PRESETS.get(kind)
        return preset if preset is not None else MobilitySpec(kind)

    def trace(self, kind: str) -> ContactTrace:
        """The mobility input for ``kind`` (cached).

        Raises:
            KeyError: if ``kind`` is neither a preset nor a registered
                mobility kind.
        """
        if kind not in self._traces:
            self._traces[kind] = self.mobility_spec(kind).build(seed=self.seed)
        return self._traces[kind]

    # --------------------------------------------------------------- sweeps

    def scenario(self, family: str) -> ScenarioSpec:
        """The :class:`ScenarioSpec` for a named sweep family at this
        runner's scale and seed.

        Families: ``baselines_trace``, ``baselines_rwp``,
        ``enhanced_trace``, ``enhanced_rwp``, ``ttl_interval400``,
        ``ttl_interval2000``.
        """
        try:
            mobility_kind, protocol_family = SWEEP_FAMILIES[family]
        except KeyError:
            raise KeyError(
                f"unknown sweep family {family!r}; "
                f"available: {', '.join(sorted(SWEEP_FAMILIES))}"
            ) from None
        return ScenarioSpec(
            name=family,
            mobility=self.mobility_spec(mobility_kind),
            protocols=PROTOCOL_FAMILIES[protocol_family],
            workload=WorkloadSpec(
                loads=self.scale.loads, replications=self.scale.replications
            ),
            seed=self.seed,
        )

    def sweep(self, family: str) -> SweepResult:
        """Run (or fetch) a named (mobility × protocol) sweep."""
        key = (family, self.scale.name)
        if key in self._sweeps:
            return self._sweeps[key]
        spec = self.scenario(family)
        mobility_kind, _ = SWEEP_FAMILIES[family]
        result = run_sweep(
            self.trace(mobility_kind),  # shared with other families of the kind
            spec.build_protocols(),
            spec.sweep_config(),
            executor=self.executor,
            progress=self.progress,
        )
        self._sweeps[key] = result
        return result
