"""Experiment execution: mobility inputs, protocol families, sweep cache.

The paper's figures reuse a handful of (mobility × protocol family) sweeps;
the runner executes each such sweep once per (scale, seed) and hands cached
:class:`~repro.core.results.SweepResult` objects to the figure builders.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.protocols.registry import ProtocolConfig, make_protocol_config
from repro.core.results import SweepResult
from repro.core.sweep import SweepConfig, run_sweep
from repro.core.workload import PAPER_LOADS, PAPER_REPLICATIONS
from repro.mobility.contact import ContactTrace
from repro.mobility.interval import IntervalScenarioConfig, generate_interval_scenario
from repro.mobility.rwp import RWPConfig, SubscriberPointRWP
from repro.mobility.synthetic import CampusTraceGenerator


@dataclass(frozen=True)
class Scale:
    """Sweep grid size."""

    name: str
    loads: tuple[int, ...]
    replications: int


SCALES: dict[str, Scale] = {
    "smoke": Scale("smoke", (5, 15), 1),
    "quick": Scale("quick", (5, 20, 35, 50), 3),
    "paper": Scale("paper", PAPER_LOADS, PAPER_REPLICATIONS),
}

# ----------------------------------------------------------- protocol families

#: label constants used across figure definitions (must match config labels)
PQ_LABEL = "P-Q epidemic (P=1, Q=1)"
TTL_LABEL = "Epidemic with TTL=300"
EC_LABEL = "Epidemic with EC"
IMMUNITY_LABEL = "Epidemic with immunity"
DYN_TTL_LABEL = "Epidemic with dynamic TTL (x2)"
EC_TTL_LABEL = "Epidemic with EC+TTL (thr=8)"
CUMULATIVE_LABEL = "Epidemic with cumulative immunity"


def baseline_protocols() -> list[ProtocolConfig]:
    """The four baselines, parameterised as the paper's figures use them
    (P=Q=1 best-delay setting, TTL=300 s)."""
    return [
        make_protocol_config("pq", p=1.0, q=1.0),
        make_protocol_config("ttl", ttl=300.0),
        make_protocol_config("ec"),
        make_protocol_config("immunity"),
    ]


def enhanced_protocols() -> list[ProtocolConfig]:
    """Enhancements and their unmodified counterparts (Figs 15-20)."""
    return [
        make_protocol_config("ttl", ttl=300.0),
        make_protocol_config("dynamic_ttl"),
        make_protocol_config("ec"),
        make_protocol_config("ec_ttl"),
        make_protocol_config("immunity"),
        make_protocol_config("cumulative_immunity"),
    ]


def ttl_family() -> list[ProtocolConfig]:
    """Constant vs dynamic TTL (the interval-scenario curves)."""
    return [
        make_protocol_config("ttl", ttl=300.0),
        make_protocol_config("dynamic_ttl"),
    ]


class ExperimentRunner:
    """Executes and caches the sweeps behind every registered experiment."""

    def __init__(
        self,
        *,
        scale: str | Scale = "quick",
        seed: int = 7,
        progress: Callable[[str], None] | None = None,
    ) -> None:
        self.scale = scale if isinstance(scale, Scale) else SCALES[scale]
        self.seed = seed
        self.progress = progress
        self._traces: dict[str, ContactTrace] = {}
        self._sweeps: dict[tuple[str, str], SweepResult] = {}

    # ------------------------------------------------------------- mobility

    def trace(self, kind: str) -> ContactTrace:
        """The mobility input for ``kind`` (cached).

        Kinds: ``campus``, ``rwp``, ``interval400``, ``interval2000``.
        """
        if kind not in self._traces:
            if kind == "campus":
                t = CampusTraceGenerator(seed=self.seed).generate()
            elif kind == "rwp":
                t = SubscriberPointRWP(RWPConfig(), seed=self.seed).generate()
            elif kind == "interval400":
                t = generate_interval_scenario(
                    IntervalScenarioConfig(max_interval=400.0), seed=self.seed
                )
            elif kind == "interval2000":
                t = generate_interval_scenario(
                    IntervalScenarioConfig(max_interval=2000.0), seed=self.seed
                )
            else:
                raise KeyError(f"unknown mobility kind {kind!r}")
            self._traces[kind] = t
        return self._traces[kind]

    # --------------------------------------------------------------- sweeps

    def sweep(self, family: str) -> SweepResult:
        """Run (or fetch) a named (mobility × protocol) sweep.

        Families: ``baselines_trace``, ``baselines_rwp``,
        ``enhanced_trace``, ``enhanced_rwp``, ``ttl_interval400``,
        ``ttl_interval2000``.
        """
        key = (family, self.scale.name)
        if key in self._sweeps:
            return self._sweeps[key]
        if family == "baselines_trace":
            trace, protos = self.trace("campus"), baseline_protocols()
        elif family == "baselines_rwp":
            trace, protos = self.trace("rwp"), baseline_protocols()
        elif family == "enhanced_trace":
            trace, protos = self.trace("campus"), enhanced_protocols()
        elif family == "enhanced_rwp":
            trace, protos = self.trace("rwp"), enhanced_protocols()
        elif family == "ttl_interval400":
            trace, protos = self.trace("interval400"), ttl_family()
        elif family == "ttl_interval2000":
            trace, protos = self.trace("interval2000"), ttl_family()
        else:
            raise KeyError(f"unknown sweep family {family!r}")
        cfg = SweepConfig(
            loads=self.scale.loads,
            replications=self.scale.replications,
            master_seed=self.seed,
        )
        result = run_sweep(trace, protos, cfg, progress=self.progress)
        self._sweeps[key] = result
        return result
