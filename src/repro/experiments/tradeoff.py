"""The buffer occupancy / delivery reliability tradeoff study.

The paper fixes buffer management (10 slots, refuse-when-full) and sweeps
load; the tradeoff literature (Chen et al., arXiv:1601.06345) instead asks
how *capacity* and *queue policy* trade occupancy against delivery. This
study sweeps the grid

    capacity × drop policy × protocol × load × replication

on one shared mobility input and reports per-cell sweep means (delivery
ratio, mean/peak occupancy, drops). All cells across the whole grid are
flattened into one executor submission, so a
:class:`~repro.core.executors.ParallelExecutor` fans the entire study out
at once.

The ``reject`` policy column at the paper's capacity (10) is, by
construction, the exact seed scenario: every cell's randomness derives
from (seed, protocol, load, rep) and ``reject`` is behaviourally identical
to the historical refuse-when-full rule — the regression tests pin this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable, Mapping

from repro.core.executors import Cell, Executor, SerialExecutor
from repro.core.results import SweepResult
from repro.core.simulation import SimulationConfig
from repro.core.sweep import SweepConfig, build_cells
from repro.scenarios import MobilitySpec, ProtocolSpec

#: Capacity values swept by default: starved, the paper's 10, and roomy.
DEFAULT_CAPACITIES: tuple[int, ...] = (5, 10, 20)

#: Every registered policy, ``reject`` (the seed behaviour) first.
DEFAULT_POLICIES: tuple[str, ...] = (
    "reject",
    "drop-tail",
    "drop-oldest",
    "drop-youngest",
    "drop-random",
)

#: Protocols compared by default: the flooding baseline, the TTL variant
#: whose Figs 13-14 collapse is buffer-driven, and an anti-packet purger.
DEFAULT_PROTOCOLS: tuple[ProtocolSpec, ...] = (
    ProtocolSpec("pure"),
    ProtocolSpec("ttl", {"ttl": 300.0}),
    ProtocolSpec("pq", {"p": 1.0, "q": 1.0, "anti_packets": True}),
)


def capacity_label(capacity: int | tuple[int, ...]) -> str:
    """Row label for a capacity axis value (scalar or per-node)."""
    if isinstance(capacity, tuple):
        return "per-node[" + ",".join(str(c) for c in capacity) + "]"
    return str(capacity)


@dataclass(frozen=True)
class TradeoffConfig:
    """The tradeoff study's grid.

    Attributes:
        capacities: Buffer-capacity axis; each entry is a scalar or a
            per-node tuple (heterogeneous populations are first-class axis
            values).
        policies: Drop-policy axis (registered names).
        protocols: Protocols under comparison.
        mobility: Shared mobility input (the paper's campus trace by
            default).
        loads: Offered loads per cell.
        replications: Replications per (capacity, policy, protocol, load).
        seed: Master seed — cells reuse the sweep derivation, so a
            (protocol, load, rep) cell sees the same workload in every
            (capacity, policy) configuration.
        bundle_tx_time: Mechanism constant (scalar or per-node).
    """

    capacities: tuple[int | tuple[int, ...], ...] = DEFAULT_CAPACITIES
    policies: tuple[str, ...] = DEFAULT_POLICIES
    protocols: tuple[ProtocolSpec, ...] = DEFAULT_PROTOCOLS
    mobility: MobilitySpec = field(default_factory=lambda: MobilitySpec("campus"))
    loads: tuple[int, ...] = (10, 30, 50)
    replications: int = 3
    seed: int = 7
    bundle_tx_time: float | tuple[float, ...] = 100.0

    def __post_init__(self) -> None:
        if not self.capacities:
            raise ValueError("capacities must be non-empty")
        if not self.policies:
            raise ValueError("policies must be non-empty")
        if not self.protocols:
            raise ValueError("protocols must be non-empty")
        caps = tuple(
            tuple(c) if isinstance(c, (list, tuple)) else int(c)
            for c in self.capacities
        )
        object.__setattr__(self, "capacities", caps)
        # Validate every (capacity, policy) combination up front.
        for capacity in caps:
            for policy in self.policies:
                SimulationConfig(
                    buffer_capacity=capacity,
                    bundle_tx_time=self.bundle_tx_time,
                    drop_policy=policy,
                )


@dataclass
class TradeoffStudy:
    """All runs of a tradeoff study, keyed by (capacity label, policy)."""

    config: TradeoffConfig
    #: (capacity label, policy) → that configuration's SweepResult
    grid: dict[tuple[str, str], SweepResult] = field(default_factory=dict)

    @property
    def capacity_labels(self) -> list[str]:
        return [capacity_label(c) for c in self.config.capacities]

    @property
    def policies(self) -> list[str]:
        return list(self.config.policies)

    def sweep(self, capacity: str | int | tuple[int, ...], policy: str) -> SweepResult:
        """The SweepResult of one (capacity, policy) configuration."""
        key = capacity if isinstance(capacity, str) else capacity_label(capacity)
        return self.grid[(key, policy)]

    def cell_means(
        self, capacity: str | int | tuple[int, ...], policy: str
    ) -> dict[str, Mapping[str, float]]:
        """Per-protocol whole-sweep means of one grid cell."""
        sweep = self.sweep(capacity, policy)
        return {label: sweep.protocol_means(label) for label in sweep.protocols()}


def run_tradeoff_study(
    config: TradeoffConfig | None = None,
    *,
    executor: Executor | None = None,
    progress: Callable[[str], None] | None = None,
) -> TradeoffStudy:
    """Execute the capacity × policy × protocol grid.

    The mobility input is built once and shared by every cell (the paper's
    shared-trace convention), and the whole grid goes to the executor as a
    single flat cell list — parallel backends see maximum width.
    """
    config = config or TradeoffConfig()
    trace = config.mobility.build(seed=config.seed)
    protocol_configs = [p.build() for p in config.protocols]

    flat: list[Cell] = []
    spans: list[tuple[str, str, int]] = []  # (capacity label, policy, #cells)
    for capacity in config.capacities:
        for policy in config.policies:
            sweep_cfg = SweepConfig(
                loads=config.loads,
                replications=config.replications,
                master_seed=config.seed,
                shared_trace=True,
                sim=SimulationConfig(
                    buffer_capacity=capacity,
                    bundle_tx_time=config.bundle_tx_time,
                    drop_policy=policy,
                ),
            )
            cells = build_cells(trace, protocol_configs, sweep_cfg)
            spans.append((capacity_label(capacity), policy, len(cells)))
            flat.extend(cells)

    hook = None
    if progress is not None:
        report = progress

        def hook(done: int, total: int, cell: Cell) -> None:
            report(
                f"[{done}/{total}] {cell.protocol.label}: "
                f"capacity={capacity_label(cell.sweep.sim.buffer_capacity)} "
                f"policy={cell.sweep.sim.drop_policy} "
                f"load={cell.load} rep={cell.rep} done"
            )

    backend = executor or SerialExecutor()
    results = backend.run(flat, progress=hook)

    study = TradeoffStudy(config=config)
    offset = 0
    for cap_label, policy, count in spans:
        sweep = SweepResult()
        sweep.runs.extend(results[offset : offset + count])
        study.grid[(cap_label, policy)] = sweep
        offset += count
    return study


__all__ = [
    "DEFAULT_CAPACITIES",
    "DEFAULT_POLICIES",
    "DEFAULT_PROTOCOLS",
    "TradeoffConfig",
    "TradeoffStudy",
    "capacity_label",
    "run_tradeoff_study",
]
