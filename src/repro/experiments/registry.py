"""The experiment registry: every figure and table of the paper.

Each :class:`Experiment` knows which sweep families it needs and how to
assemble its artefact (a :class:`~repro.analysis.figures.FigureData` or a
rendered table). The benchmark harness and the CLI both drive this
registry, so ``python -m repro run fig13`` and
``pytest benchmarks/test_fig13_delivery_trace.py`` produce the same rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

from repro.analysis.figures import FigureData, build_figure
from repro.analysis.tables import (
    build_table2,
    render_resilience_table,
    render_table1,
    render_table2,
    render_tradeoff_table,
)
from repro.experiments.runner import (
    CUMULATIVE_LABEL,
    DYN_TTL_LABEL,
    EC_LABEL,
    EC_TTL_LABEL,
    IMMUNITY_LABEL,
    PQ_LABEL,
    TTL_LABEL,
    ExperimentRunner,
)


@dataclass(frozen=True)
class Experiment:
    """One reproducible paper artefact."""

    exp_id: str
    title: str
    kind: str  #: ``figure`` or ``table``
    description: str
    families: tuple[str, ...]  #: sweep families consumed
    build: Callable[[ExperimentRunner], FigureData | str]


# ------------------------------------------------------------- figure builders


def _fig07(r: ExperimentRunner) -> FigureData:
    return build_figure(
        "fig07",
        "Delay comparison of epidemic-based protocols (trace)",
        "delay",
        r.sweep("baselines_trace"),
        include=[PQ_LABEL, TTL_LABEL, EC_LABEL],
    )


def _fig08(r: ExperimentRunner) -> FigureData:
    return build_figure(
        "fig08",
        "Delay comparison of epidemic-based protocols (RWP)",
        "delay",
        r.sweep("baselines_rwp"),
        include=[PQ_LABEL, TTL_LABEL, IMMUNITY_LABEL, EC_LABEL],
    )


def _fig09(r: ExperimentRunner) -> FigureData:
    return build_figure(
        "fig09",
        "Average bundle duplication rate (trace)",
        "duplication_rate",
        r.sweep("baselines_trace"),
    )


def _fig10(r: ExperimentRunner) -> FigureData:
    return build_figure(
        "fig10",
        "Average bundle duplication rate (RWP)",
        "duplication_rate",
        r.sweep("baselines_rwp"),
    )


def _fig11(r: ExperimentRunner) -> FigureData:
    return build_figure(
        "fig11",
        "Buffer occupancy level (trace)",
        "buffer_occupancy",
        r.sweep("baselines_trace"),
    )


def _fig12(r: ExperimentRunner) -> FigureData:
    return build_figure(
        "fig12",
        "Average buffer occupancy level (RWP)",
        "buffer_occupancy",
        r.sweep("baselines_rwp"),
    )


def _fig13(r: ExperimentRunner) -> FigureData:
    return build_figure(
        "fig13",
        "Delivery ratio of epidemic with TTL and EC (trace)",
        "delivery_ratio",
        r.sweep("baselines_trace"),
        include=[EC_LABEL, TTL_LABEL],
    )


def _fig14(r: ExperimentRunner) -> FigureData:
    s400 = r.sweep("ttl_interval400").series(lambda run: run.delivery_ratio)
    s2000 = r.sweep("ttl_interval2000").series(lambda run: run.delivery_ratio)
    curve400 = next(s for s in s400 if s.label == TTL_LABEL)
    curve2000 = next(s for s in s2000 if s.label == TTL_LABEL)
    curve400.label = "Interval time = 400"
    curve2000.label = "Interval time = 2000"
    return FigureData(
        figure_id="fig14",
        title="Delivery ratio of epidemic with TTL=300 under two interval regimes",
        metric="delivery_ratio",
        series=[curve400, curve2000],
    )


def _enhanced_fig(
    r: ExperimentRunner, exp_id: str, title: str, metric: str, mobility: str
) -> FigureData:
    """Figs 15-20: enhanced vs unmodified protocols.

    The RWP versions of the paper's Figs 15/17/19 additionally plot the
    TTL/dynamic-TTL curves from the two controlled-interval scenarios.
    """
    fig = build_figure(
        exp_id,
        title,
        metric,
        r.sweep(f"enhanced_{mobility}"),
        include=[
            DYN_TTL_LABEL,
            TTL_LABEL,
            EC_LABEL,
            EC_TTL_LABEL,
            IMMUNITY_LABEL,
            CUMULATIVE_LABEL,
        ],
    )
    if mobility == "rwp":
        from repro.analysis.figures import METRIC_ACCESSORS

        accessor = METRIC_ACCESSORS[metric]
        for family, tag in (
            ("ttl_interval400", "interval=400"),
            ("ttl_interval2000", "interval=2000"),
        ):
            for s in r.sweep(family).series(accessor):
                s.label = f"{s.label} ({tag})"
                fig.series.append(s)
    return fig


def _fig15(r: ExperimentRunner) -> FigureData:
    return _enhanced_fig(
        r, "fig15", "Delivery ratio, modified vs unmodified (RWP)", "delivery_ratio", "rwp"
    )


def _fig16(r: ExperimentRunner) -> FigureData:
    return _enhanced_fig(
        r, "fig16", "Delivery ratio, modified vs unmodified (trace)", "delivery_ratio", "trace"
    )


def _fig17(r: ExperimentRunner) -> FigureData:
    return _enhanced_fig(
        r, "fig17", "Buffer occupancy, modified vs unmodified (RWP)", "buffer_occupancy", "rwp"
    )


def _fig18(r: ExperimentRunner) -> FigureData:
    return _enhanced_fig(
        r, "fig18", "Buffer occupancy, modified vs unmodified (trace)", "buffer_occupancy", "trace"
    )


def _fig19(r: ExperimentRunner) -> FigureData:
    return _enhanced_fig(
        r, "fig19", "Duplication rate, modified vs unmodified (RWP)", "duplication_rate", "rwp"
    )


def _fig20(r: ExperimentRunner) -> FigureData:
    return _enhanced_fig(
        r, "fig20", "Duplication rate, modified vs unmodified (trace)", "duplication_rate", "trace"
    )


# -------------------------------------------------------------- table builders


def _table1(_: ExperimentRunner) -> str:
    return render_table1()


def _tradeoff(r: ExperimentRunner) -> str:
    from repro.experiments.tradeoff import TradeoffConfig, run_tradeoff_study

    study = run_tradeoff_study(
        TradeoffConfig(
            loads=tuple(r.scale.loads),
            replications=r.scale.replications,
            seed=r.seed,
        ),
        executor=r.executor,
        progress=r.progress,
    )
    return render_tradeoff_table(study)


def _resilience(r: ExperimentRunner) -> str:
    from repro.experiments.resilience import ResilienceConfig, run_resilience_study

    study = run_resilience_study(
        ResilienceConfig(
            loads=tuple(r.scale.loads),
            replications=r.scale.replications,
            seed=r.seed,
        ),
        executor=r.executor,
        progress=r.progress,
    )
    return render_resilience_table(study)


def _table2(r: ExperimentRunner) -> str:
    rows = build_table2(
        r.sweep("enhanced_rwp"),
        r.sweep("enhanced_trace"),
        protocols=[
            TTL_LABEL,
            DYN_TTL_LABEL,
            EC_LABEL,
            EC_TTL_LABEL,
            IMMUNITY_LABEL,
            CUMULATIVE_LABEL,
        ],
    )
    return render_table2(rows)


# ------------------------------------------------------------------- registry

_EXPERIMENTS: dict[str, Experiment] = {}


def _register(exp: Experiment) -> None:
    if exp.exp_id in _EXPERIMENTS:
        raise ValueError(f"duplicate experiment id {exp.exp_id}")
    _EXPERIMENTS[exp.exp_id] = exp


for _exp in [
    Experiment(
        "table1",
        "Table I — prior-study parameter survey",
        "table",
        "Static reproduction of the paper's survey of experiment parameters.",
        (),
        _table1,
    ),
    Experiment(
        "fig07",
        "Fig. 7 — delay vs load, trace",
        "figure",
        "P-Q (P=Q=1), TTL=300 and EC delay curves on the campus trace; "
        "expected shape: EC/P-Q grow with load, TTL above P-Q, P-Q slowest.",
        ("baselines_trace",),
        _fig07,
    ),
    Experiment(
        "fig08",
        "Fig. 8 — delay vs load, RWP",
        "figure",
        "Baseline delay under RWP; immunity fastest, EC/TTL slowest.",
        ("baselines_rwp",),
        _fig08,
    ),
    Experiment(
        "fig09",
        "Fig. 9 — duplication rate vs load, trace",
        "figure",
        "Immunity highest duplication; TTL/EC lowest.",
        ("baselines_trace",),
        _fig09,
    ),
    Experiment(
        "fig10",
        "Fig. 10 — duplication rate vs load, RWP",
        "figure",
        "Same comparison under RWP.",
        ("baselines_rwp",),
        _fig10,
    ),
    Experiment(
        "fig11",
        "Fig. 11 — buffer occupancy vs load, trace",
        "figure",
        "P-Q/EC >75% past load 20; immunity lower; TTL near zero.",
        ("baselines_trace",),
        _fig11,
    ),
    Experiment(
        "fig12",
        "Fig. 12 — buffer occupancy vs load, RWP",
        "figure",
        "Same comparison under RWP.",
        ("baselines_rwp",),
        _fig12,
    ),
    Experiment(
        "fig13",
        "Fig. 13 — delivery ratio of EC vs TTL, trace",
        "figure",
        "Both degrade with load; EC above TTL.",
        ("baselines_trace",),
        _fig13,
    ),
    Experiment(
        "fig14",
        "Fig. 14 — TTL=300 delivery under interval 400 vs 2000",
        "figure",
        "Longer inter-encounter intervals depress constant-TTL delivery.",
        ("ttl_interval400", "ttl_interval2000"),
        _fig14,
    ),
    Experiment(
        "fig15",
        "Fig. 15 — delivery ratio, modified vs unmodified, RWP",
        "figure",
        "Enhancements vs originals under RWP plus interval-scenario TTL curves.",
        ("enhanced_rwp", "ttl_interval400", "ttl_interval2000"),
        _fig15,
    ),
    Experiment(
        "fig16",
        "Fig. 16 — delivery ratio, modified vs unmodified, trace",
        "figure",
        "Dynamic TTL > constant TTL; EC+TTL > EC at high loads; immunity ≈ cumulative.",
        ("enhanced_trace",),
        _fig16,
    ),
    Experiment(
        "fig17",
        "Fig. 17 — buffer occupancy, modified vs unmodified, RWP",
        "figure",
        "EC+TTL below EC; cumulative ≥15% below immunity; dynamic above constant TTL.",
        ("enhanced_rwp", "ttl_interval400", "ttl_interval2000"),
        _fig17,
    ),
    Experiment(
        "fig18",
        "Fig. 18 — buffer occupancy, modified vs unmodified, trace",
        "figure",
        "Same comparison on the campus trace.",
        ("enhanced_trace",),
        _fig18,
    ),
    Experiment(
        "fig19",
        "Fig. 19 — duplication rate, modified vs unmodified, RWP",
        "figure",
        "Enhancements slightly raise duplication except cumulative immunity.",
        ("enhanced_rwp", "ttl_interval400", "ttl_interval2000"),
        _fig19,
    ),
    Experiment(
        "fig20",
        "Fig. 20 — duplication rate, modified vs unmodified, trace",
        "figure",
        "Same comparison on the campus trace.",
        ("enhanced_trace",),
        _fig20,
    ),
    Experiment(
        "table2",
        "Table II — original vs enhanced protocol means",
        "table",
        "Whole-sweep means of delivery/buffer/duplication for 6 protocols × 2 mobility models.",
        ("enhanced_rwp", "enhanced_trace"),
        _table2,
    ),
    Experiment(
        "resilience",
        "Resilience — delivery under node churn × state-loss mode",
        "table",
        "Disruption-tolerance study beyond the paper: sweep the node crash "
        "rate and the reboot state-loss mode (preserve vs wipe buffer and "
        "knowledge) for pure epidemic, anti-packet P-Q and immunity; the "
        "0-churn row is the exact fault-free configuration.",
        (),
        _resilience,
    ),
    Experiment(
        "tradeoff",
        "Tradeoff — occupancy vs delivery under capacity × drop policy",
        "table",
        "Buffer-contention study beyond the paper: sweep relay capacity and "
        "drop policy (reject/drop-tail/drop-oldest/drop-youngest/drop-random) "
        "for pure, TTL=300 and anti-packet P-Q; the reject column at capacity "
        "10 is the paper's exact configuration.",
        (),
        _tradeoff,
    ),
]:
    _register(_exp)

EXPERIMENT_IDS: list[str] = sorted(_EXPERIMENTS)


def get_experiment(exp_id: str) -> Experiment:
    """Look up an experiment.

    Raises:
        KeyError: with the list of known ids.
    """
    try:
        return _EXPERIMENTS[exp_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {exp_id!r}; known: {', '.join(EXPERIMENT_IDS)}"
        ) from None


def iter_experiments() -> list[Experiment]:
    """All experiments in id order."""
    return [_EXPERIMENTS[k] for k in EXPERIMENT_IDS]
