"""Registered paper experiments.

One entry per figure/table of the evaluation (plus the ablations DESIGN.md
calls out), each reproducible at two scales:

* ``quick`` — 4 loads × 3 replications (benchmarks, CI);
* ``paper`` — the paper's full grid, 10 loads × 10 replications;
* ``smoke`` — 2 loads × 1 replication (unit tests).

Use :class:`~repro.experiments.runner.ExperimentRunner` to execute them;
sweeps are cached so experiments sharing a protocol family (e.g. Figs 7, 9,
11, 13 all read the baseline trace sweep) run the simulations once.
"""

from repro.experiments.registry import (
    EXPERIMENT_IDS,
    Experiment,
    get_experiment,
    iter_experiments,
)
from repro.experiments.runner import ExperimentRunner, Scale, SCALES

__all__ = [
    "EXPERIMENT_IDS",
    "Experiment",
    "get_experiment",
    "iter_experiments",
    "ExperimentRunner",
    "Scale",
    "SCALES",
]
