"""The churn-resilience study: delivery under node crashes and reboots.

The paper's runs assume a cooperative, always-on population; the fault
model (:mod:`repro.faults`) lets us ask how each protocol family degrades
when relays crash, sit out contacts, and reboot with or without their
state. This study sweeps the grid

    churn rate × state-loss mode × protocol × load × replication

on one shared mobility input. The churn-rate axis includes 0.0 — a
fault-free baseline row that, by the trivial-spec normalisation in
:meth:`~repro.core.simulation.SimulationConfig.active_faults`, runs the
exact unfaulted code path — and the state-loss axis contrasts reboots
that preserve state (``none``) with reboots that wipe both the buffer and
the knowledge store (``all``). The fault environment keys on
(seed, load, rep) only, so every (protocol, state-loss) configuration at
the same grid coordinates faces the identical crash schedule: column
differences are protocol behaviour, not fault luck.

The interesting separation is between the state-preserving and
state-losing columns of knowledge-bearing protocols: an anti-packet or
immunity node that forgets its delivered-set is re-infected by the next
carrier it meets (counted as ``reinfections``), while a flooding node has
no knowledge to lose and only pays the buffer wipe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable

from repro.core.executors import Cell, Executor, SerialExecutor
from repro.core.results import SweepResult
from repro.core.simulation import SimulationConfig
from repro.core.sweep import SweepConfig, build_cells
from repro.faults import STATE_LOSS_MODES, FaultSpec
from repro.scenarios import MobilitySpec, ProtocolSpec

#: Churn rates swept by default (per-node crash rate, 1/s while up): the
#: fault-free baseline, a gentle regime (~1 crash per 20 000 s up-time)
#: and a harsh one (~1 per 5 000 s).
DEFAULT_CHURN_RATES: tuple[float, ...] = (0.0, 5e-5, 2e-4)

#: Reboot modes contrasted by default: state-preserving vs full wipe.
DEFAULT_STATE_LOSS_MODES: tuple[str, ...] = ("none", "all")

#: Mean outage duration (s) for every non-zero churn rate.
DEFAULT_MEAN_DOWNTIME: float = 2000.0

#: Protocol families compared by default: the flooding baseline (nothing
#: to forget), an anti-packet purger and an immunity-table protocol (both
#: knowledge-bearing, so state loss hurts them twice).
DEFAULT_PROTOCOLS: tuple[ProtocolSpec, ...] = (
    ProtocolSpec("pure"),
    ProtocolSpec("pq", {"p": 1.0, "q": 1.0, "anti_packets": True}),
    ProtocolSpec("immunity"),
)


def churn_rate_label(rate: float) -> str:
    """Row label for a churn-rate axis value."""
    return f"{rate:g}"


@dataclass(frozen=True)
class ResilienceConfig:
    """The resilience study's grid.

    Attributes:
        churn_rates: Per-node crash rates to sweep; include 0.0 for the
            fault-free baseline row.
        state_loss_modes: Reboot modes (see
            :data:`repro.faults.STATE_LOSS_MODES`) contrasted per rate.
        mean_downtime: Mean outage duration (s), shared by every faulted
            cell so the rate axis varies crash frequency alone.
        protocols: Protocols under comparison.
        mobility: Shared mobility input (the paper's campus trace by
            default).
        loads: Offered loads per cell.
        replications: Replications per (rate, mode, protocol, load).
        seed: Master seed — the fault environment derives from
            (seed, load, rep), so all protocols and all state-loss modes
            face identical crash schedules at the same coordinates.
    """

    churn_rates: tuple[float, ...] = DEFAULT_CHURN_RATES
    state_loss_modes: tuple[str, ...] = DEFAULT_STATE_LOSS_MODES
    mean_downtime: float = DEFAULT_MEAN_DOWNTIME
    protocols: tuple[ProtocolSpec, ...] = DEFAULT_PROTOCOLS
    mobility: MobilitySpec = field(default_factory=lambda: MobilitySpec("campus"))
    loads: tuple[int, ...] = (10, 30)
    replications: int = 3
    seed: int = 7

    def __post_init__(self) -> None:
        if not self.churn_rates:
            raise ValueError("churn_rates must be non-empty")
        if any(rate < 0 for rate in self.churn_rates):
            raise ValueError("churn_rates must be >= 0")
        if not self.state_loss_modes:
            raise ValueError("state_loss_modes must be non-empty")
        for mode in self.state_loss_modes:
            if mode not in STATE_LOSS_MODES:
                raise ValueError(
                    f"unknown state-loss mode {mode!r}; "
                    f"known: {', '.join(STATE_LOSS_MODES)}"
                )
        if not self.protocols:
            raise ValueError("protocols must be non-empty")
        if self.mean_downtime <= 0 and any(r > 0 for r in self.churn_rates):
            raise ValueError("mean_downtime must be > 0 for non-zero churn rates")
        # Validate every (rate, mode) combination up front.
        for rate in self.churn_rates:
            for mode in self.state_loss_modes:
                self.fault_spec(rate, mode)

    def fault_spec(self, rate: float, mode: str) -> FaultSpec:
        """The :class:`~repro.faults.FaultSpec` of one grid cell."""
        return FaultSpec(
            churn_rate=rate, mean_downtime=self.mean_downtime, state_loss=mode
        )


@dataclass
class ResilienceStudy:
    """All runs of a resilience study, keyed by (rate label, mode)."""

    config: ResilienceConfig
    #: (churn-rate label, state-loss mode) → that cell's SweepResult
    grid: dict[tuple[str, str], SweepResult] = field(default_factory=dict)

    @property
    def rate_labels(self) -> list[str]:
        return [churn_rate_label(r) for r in self.config.churn_rates]

    @property
    def modes(self) -> list[str]:
        return list(self.config.state_loss_modes)

    def sweep(self, rate: str | float, mode: str) -> SweepResult:
        """The SweepResult of one (churn rate, state-loss mode) cell."""
        key = rate if isinstance(rate, str) else churn_rate_label(rate)
        return self.grid[(key, mode)]


def run_resilience_study(
    config: ResilienceConfig | None = None,
    *,
    executor: Executor | None = None,
    progress: Callable[[str], None] | None = None,
) -> ResilienceStudy:
    """Execute the churn rate × state-loss × protocol grid.

    The mobility input is built once and shared by every cell, and the
    whole grid goes to the executor as a single flat cell list — parallel
    backends see maximum width. Zero-rate cells carry a trivial fault
    spec, which :attr:`SimulationConfig.active_faults` normalises away:
    the baseline row runs the identical batched fast path as an unfaulted
    sweep.
    """
    config = config or ResilienceConfig()
    trace = config.mobility.build(seed=config.seed)
    protocol_configs = [p.build() for p in config.protocols]

    flat: list[Cell] = []
    spans: list[tuple[str, str, int]] = []  # (rate label, mode, #cells)
    for rate in config.churn_rates:
        for mode in config.state_loss_modes:
            sweep_cfg = SweepConfig(
                loads=config.loads,
                replications=config.replications,
                master_seed=config.seed,
                shared_trace=True,
                sim=SimulationConfig(faults=config.fault_spec(rate, mode)),
            )
            cells = build_cells(trace, protocol_configs, sweep_cfg)
            spans.append((churn_rate_label(rate), mode, len(cells)))
            flat.extend(cells)

    hook = None
    if progress is not None:
        report = progress

        def hook(done: int, total: int, cell: Cell) -> None:
            spec = cell.sweep.sim.faults
            assert spec is not None
            report(
                f"[{done}/{total}] {cell.protocol.label}: "
                f"churn={churn_rate_label(spec.churn_rate)} "
                f"state_loss={spec.state_loss} "
                f"load={cell.load} rep={cell.rep} done"
            )

    backend = executor or SerialExecutor()
    results = backend.run(flat, progress=hook)

    study = ResilienceStudy(config=config)
    offset = 0
    for rate_label, mode, count in spans:
        sweep = SweepResult()
        sweep.runs.extend(results[offset : offset + count])
        study.grid[(rate_label, mode)] = sweep
        offset += count
    return study


__all__ = [
    "DEFAULT_CHURN_RATES",
    "DEFAULT_MEAN_DOWNTIME",
    "DEFAULT_PROTOCOLS",
    "DEFAULT_STATE_LOSS_MODES",
    "ResilienceConfig",
    "ResilienceStudy",
    "churn_rate_label",
    "run_resilience_study",
]
