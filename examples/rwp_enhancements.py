#!/usr/bin/env python3
"""The paper's enhancement study under Random-Way-Point mobility.

Compares each enhancement against its unmodified counterpart (Figs 15, 17,
19) on the subscriber-point RWP model and prints a Table II-style summary,
including the signaling-overhead column behind the abstract's
"order of magnitude less signaling" claim for cumulative immunity.

Run:  python examples/rwp_enhancements.py [--scale quick|paper]
"""

import argparse
import sys

from repro import RWPConfig, SubscriberPointRWP, SweepConfig, make_protocol_config, run_sweep
from repro.analysis.ascii_plot import render_series_table

PAIRS = [
    ("constant vs dynamic TTL", "ttl", {"ttl": 300.0}, "dynamic_ttl", {}),
    ("EC vs EC+TTL", "ec", {}, "ec_ttl", {}),
    ("immunity vs cumulative", "immunity", {}, "cumulative_immunity", {}),
]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=["smoke", "quick", "paper"], default="quick")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()
    loads = {"smoke": (5, 15), "quick": (5, 20, 35, 50), "paper": tuple(range(5, 55, 5))}[
        args.scale
    ]
    reps = {"smoke": 1, "quick": 3, "paper": 10}[args.scale]

    trace = SubscriberPointRWP(RWPConfig(), seed=args.seed).generate()
    protocols = []
    for _, base_name, base_kw, enh_name, enh_kw in PAIRS:
        protocols.append(make_protocol_config(base_name, **base_kw))
        protocols.append(make_protocol_config(enh_name, **enh_kw))
    result = run_sweep(
        trace,
        protocols,
        SweepConfig(loads=loads, replications=reps, master_seed=args.seed),
    )

    print("Delivery ratio vs load (RWP):")
    print(render_series_table(result.delivery_ratio_series()))
    print()
    print("Buffer occupancy vs load (RWP):")
    print(render_series_table(result.buffer_occupancy_series()))
    print()

    print(f"{'protocol':<38} {'delivery':>9} {'buffer':>8} {'signal units':>13}")
    for label in result.protocols():
        m = result.protocol_means(label)
        print(
            f"{label:<38} {m['delivery_ratio']:>9.2%} "
            f"{m['buffer_occupancy']:>8.2%} {m['signaling_overhead']:>13.0f}"
        )
    imm = result.protocol_means("Epidemic with immunity")
    cum = result.protocol_means("Epidemic with cumulative immunity")
    if cum["signaling_overhead"] > 0:
        ratio = imm["signaling_overhead"] / cum["signaling_overhead"]
        print(
            f"\ncumulative immunity transmits {ratio:.0f}x fewer control units "
            "than per-bundle immunity\n(the paper's 'order of magnitude less "
            "signaling overheads')."
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
