#!/usr/bin/env python3
"""Scenario-file workflow: experiments as data, executed on any backend.

Builds a scenario declaratively, round-trips it through a JSON file (the
form you would commit to a repo or ship to a cluster), then runs it twice —
serially and fanned out over two worker processes — and shows the results
are bit-identical. A registered custom mobility model joins the scenario
vocabulary with one decorator.

Run:  python examples/scenario_workflow.py

The same file runs from the shell:
    python -m repro run-scenario my_scenario.json --jobs 2

A ready-made example lives at examples/scenarios/campus_baselines.json.
"""

import tempfile
from pathlib import Path

from repro import (
    ContactTrace,
    MobilitySpec,
    ProtocolSpec,
    ScenarioSpec,
    WorkloadSpec,
    register_mobility,
)


# 1. Any callable that returns a ContactTrace can become a mobility *kind*.
#    Registered kinds are first-class everywhere: MobilitySpec, scenario
#    files, the experiment runner, the CLI.
@register_mobility("ring")
def ring_mobility(*, seed: int = 0, num_nodes: int = 8, period: float = 600.0) -> ContactTrace:
    """A toy deterministic ring: node i meets node i+1 once per period."""
    rows = []
    for round_no in range(20):
        for i in range(num_nodes):
            start = round_no * period + i * (period / num_nodes)
            rows.append((start, start + 120.0, i, (i + 1) % num_nodes))
    return ContactTrace.from_tuples(rows, num_nodes, name="ring").coalesced()


def main() -> None:
    # 2. The whole experiment as one declarative value.
    spec = ScenarioSpec(
        name="ring-pq-vs-immunity",
        mobility=MobilitySpec("ring", {"num_nodes": 8, "period": 600.0}),
        protocols=(
            ProtocolSpec("pq", {"p": 1.0, "q": 1.0}),
            ProtocolSpec("immunity"),
        ),
        workload=WorkloadSpec(loads=(2, 6, 10), replications=3),
        seed=42,
    )

    # 3. Round-trip through a JSON file — nothing is lost.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "scenario.json"
        spec.save(path)
        print(f"scenario file ({path.stat().st_size} bytes):")
        print(path.read_text())
        loaded = ScenarioSpec.load(path)
        assert loaded == spec, "JSON round-trip must be lossless"

    # 4. Execute — serially, then across two worker processes. Every cell
    #    derives its randomness from its own (seed, protocol, load, rep)
    #    coordinates, so the backends agree bit-for-bit.
    serial = loaded.run()
    parallel = loaded.run(jobs=2)
    assert serial.runs == parallel.runs, "backends must be bit-identical"
    print(f"ran {len(serial)} cells; parallel results identical to serial\n")

    # 5. The usual aggregation applies.
    for series in serial.delivery_ratio_series():
        cells = ", ".join(f"{p.load}->{p.value:.2f}" for p in series.points)
        print(f"delivery ratio  {series.label}: {cells}")
    for series in serial.delay_series():
        cells = ", ".join(
            f"{p.load}->{p.value:.0f}s" for p in series.points if p.n
        )
        print(f"delay           {series.label}: {cells}")


# Guarded so spawn-start-method platforms (macOS/Windows) can re-import
# this module in ProcessPool workers without re-running the experiment.
if __name__ == "__main__":
    main()
