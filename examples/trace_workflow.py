#!/usr/bin/env python3
"""Trace-file workflow: export, import, CRAWDAD adapter, statistics.

Shows the on-disk round trip the paper's methodology implies: generate a
mobility trace once, persist it, and run every protocol study against the
same file — plus the Haggle-format adapter that loads the genuine CRAWDAD
``cambridge/haggle`` contact listings when you have them.

Run:  python examples/trace_workflow.py
"""

import tempfile
from pathlib import Path

from repro import (
    CampusTraceGenerator,
    SweepConfig,
    compute_trace_stats,
    make_protocol_config,
    read_contact_trace,
    read_haggle_trace,
    run_sweep,
    write_contact_trace,
)
from repro.mobility.trace_file import write_haggle_trace


def main() -> int:
    workdir = Path(tempfile.mkdtemp(prefix="repro-traces-"))

    # 1. Generate once, persist in the canonical format.
    trace = CampusTraceGenerator(seed=5).generate()
    canonical = workdir / "campus.trace"
    write_contact_trace(trace, canonical)
    print(f"wrote {canonical} ({canonical.stat().st_size} bytes)")

    # 2. Reload — simulation inputs are plain files, like the paper's.
    reloaded = read_contact_trace(canonical)
    assert len(reloaded) == len(trace)

    # 3. The CRAWDAD-Haggle adapter: 1-based `id1 id2 start end` rows.
    #    (Here we export our own trace in that shape to demonstrate; point
    #    read_haggle_trace at the real dataset's contact listing when you
    #    have it and everything downstream is unchanged.)
    haggle = workdir / "campus.haggle.dat"
    write_haggle_trace(reloaded, haggle)
    imported = read_haggle_trace(haggle, num_nodes=reloaded.num_nodes)
    print(f"haggle round-trip: {len(imported)} contacts")

    # 4. Statistics — the numbers EXPERIMENTS.md reports per mobility input.
    stats = compute_trace_stats(imported)
    print("\ntrace statistics:")
    for key, value in stats.as_dict().items():
        print(f"  {key:>26}: {value:,.4g}" if isinstance(value, float) else f"  {key:>26}: {value}")

    # 5. Any study runs off the file-loaded trace.
    result = run_sweep(
        imported,
        [make_protocol_config("immunity")],
        SweepConfig(loads=(10,), replications=3, master_seed=5),
    )
    means = result.protocol_means("Epidemic with immunity")
    print(
        f"\nimmunity on the reloaded trace: delivery {means['delivery_ratio']:.0%}, "
        f"delay {means['delay']:.0f}s"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
