#!/usr/bin/env python3
"""The paper's baseline study on the campus trace (Figs 7, 9, 11, 13).

Runs the four baseline protocols — P-Q epidemic (P=Q=1), epidemic with
TTL=300, epidemic with EC, epidemic with immunity — through the load sweep
and renders the four trace-based baseline figures as ASCII plots.

Run:  python examples/campus_baselines.py [--scale quick|paper]
"""

import argparse
import sys
import time

from repro.analysis.ascii_plot import render_plot, render_series_table
from repro.experiments import ExperimentRunner, get_experiment


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=["smoke", "quick", "paper"], default="quick")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    runner = ExperimentRunner(scale=args.scale, seed=args.seed)
    for exp_id in ("fig07", "fig09", "fig11", "fig13"):
        exp = get_experiment(exp_id)
        t0 = time.time()
        fig = exp.build(runner)
        print(f"==== {exp.title} ({time.time() - t0:.1f}s) ====")
        print(render_plot(fig.series, y_label=fig.y_label))
        print()
        print(render_series_table(fig.series))
        print()
    print(
        "Shapes to check against the paper: P-Q delay grows slowest and its\n"
        "buffers run fullest; EC tracks P-Q on delay/buffer but degrades in\n"
        "delivery; TTL=300 runs nearly empty buffers and loses bundles as the\n"
        "load grows; immunity keeps delivery at 100% with mid-level buffers."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
