#!/usr/bin/env python3
"""Buffer-contention workflow: sweep capacity × drop policy across protocols.

The paper's Figs 13-14 pit 10 relay slots against up to 50 offered bundles
with a fixed refuse-when-full rule. This example opens both knobs the way
the occupancy/delivery tradeoff literature does (Chen et al.,
arXiv:1601.06345): relay capacity becomes an axis (including a per-node
heterogeneous point — four high-capacity "ferry" nodes among constrained
ones) and the drop policy becomes an axis (reject / drop-tail /
drop-oldest / drop-youngest / drop-random).

The whole grid is one flat cell list, so the parallel executor fans the
entire study out at once; results are bit-identical to a serial run.

Run:  python examples/buffer_tradeoff.py

The same study is registered as an experiment:
    python -m repro run tradeoff --scale quick --jobs 4
"""

from repro.analysis.tables import render_tradeoff_table
from repro.core.executors import ParallelExecutor
from repro.experiments.tradeoff import (
    DEFAULT_PROTOCOLS,
    TradeoffConfig,
    run_tradeoff_study,
)
from repro.scenarios import MobilitySpec


def main() -> None:
    config = TradeoffConfig(
        # Scalar capacities plus one heterogeneous point: nodes 8-11 are
        # ferries with 20 slots, everyone else gets 4.
        capacities=(5, 10, (4,) * 8 + (20,) * 4),
        policies=("reject", "drop-tail", "drop-oldest", "drop-random"),
        protocols=DEFAULT_PROTOCOLS,
        mobility=MobilitySpec("campus"),
        loads=(10, 30, 50),
        replications=3,
        seed=7,
    )
    study = run_tradeoff_study(config, executor=ParallelExecutor(jobs=2))
    print(render_tradeoff_table(study))

    # The reject column at capacity 10 IS the paper's configuration: the
    # same cells run through a plain sweep agree exactly.
    from repro.core.simulation import SimulationConfig
    from repro.core.sweep import SweepConfig, run_sweep

    baseline = run_sweep(
        config.mobility.build(seed=config.seed),
        [p.build() for p in config.protocols],
        SweepConfig(
            loads=config.loads,
            replications=config.replications,
            master_seed=config.seed,
            sim=SimulationConfig(buffer_capacity=10),
        ),
    )
    assert study.sweep(10, "reject").runs == baseline.runs
    print("\nreject @ capacity 10 == paper baseline: verified")


# Guarded so spawn-start-method platforms (macOS/Windows) can re-import
# this module in ProcessPool workers without re-running the study.
if __name__ == "__main__":
    main()
