#!/usr/bin/env python3
"""Extending the framework: a custom protocol in ~40 lines.

Implements *quota epidemic* — each copy may be forwarded at most N times
(the per-copy encounter count the EC substrate already tracks doubles as
the quota meter), except that delivery to the destination is always
allowed. This is the simplest member of the controlled-replication family
(Spray-and-Wait et al.) and slots into the same unified evaluation as the
paper's protocols: register the config class, then sweep it against any
baseline.

Run:  python examples/custom_protocol.py
"""

from dataclasses import dataclass

from repro import CampusTraceGenerator, SweepConfig, make_protocol_config, run_sweep
from repro.analysis.ascii_plot import render_series_table
from repro.core.bundle import StoredBundle
from repro.core.node import Node
from repro.core.protocols import Protocol, register_protocol


class QuotaEpidemic(Protocol):
    """Epidemic flooding where each copy forwards at most ``quota`` times."""

    name = "quota"

    def __init__(self, node, sim, rng, *, quota: int) -> None:
        super().__init__(node, sim, rng)
        self.quota = quota

    def should_offer(self, sb: StoredBundle, peer: Node, now: float) -> bool:
        if sb.bundle.destination == peer.id:
            return True  # handing over to the destination is always allowed
        return sb.ec < self.quota


@register_protocol
@dataclass(frozen=True)
class QuotaEpidemicConfig:
    """Factory for :class:`QuotaEpidemic`."""

    quota: int = 3
    protocol_name = "quota"

    @property
    def label(self) -> str:
        return f"Quota epidemic (N={self.quota})"

    def build(self, node, sim, rng) -> QuotaEpidemic:
        return QuotaEpidemic(node, sim, rng, quota=self.quota)


def main() -> int:
    trace = CampusTraceGenerator(seed=11).generate()
    result = run_sweep(
        trace,
        [
            make_protocol_config("pq", p=1.0, q=1.0),
            make_protocol_config("quota", quota=3),
            make_protocol_config("quota", quota=8),
        ],
        SweepConfig(loads=(5, 20, 35, 50), replications=3, master_seed=11),
    )
    print("Delivery ratio vs load:")
    print(render_series_table(result.delivery_ratio_series()))
    print()
    print("Transmissions (mean per run):")
    print(
        render_series_table(
            result.series(lambda r: float(r.transmissions)), value_fmt="{:.0f}"
        )
    )
    print(
        "\nThe quota caps per-copy forwarding, trading delivery ratio for a "
        "much smaller\ntransmission budget — the replication-control knob the "
        "paper's EC threshold\n(Algorithm 2) turns adaptively."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
