#!/usr/bin/env python3
"""Hybrid-fidelity scale-out: sweep 10^5–10^6 nodes on the analytic engine.

The event-driven simulator tops out around a few thousand nodes per core;
the analytic surrogate (``engine="ode"``) integrates the same epidemic
mean-field the DES samples, so a million-node sweep costs milliseconds.
This example runs pure epidemic at three population sizes, times each
sweep, and checks the surrogate delay against the closed-form large-N law

    E[T] ~ ln(N) / (beta * (N - 1))

from Zhang et al.'s fluid model. For the hybrid workflow that *anchors*
such extrapolations against small DES runs first, see
``examples/scenarios/analytic_scale.json`` and docs/architecture.md.

Run:  PYTHONPATH=src python examples/analytic_scale.py
"""

import math
import time

from repro import SimulationConfig, SweepConfig, make_protocol_config, run_sweep
from repro.analytic import make_analytic_model

# Meeting rate scaled so the sweep horizon stays moderate at every N: each
# node still meets ~beta*N peers per unit time as the population grows.
CASES = [
    (100_000, 1.25e-9),
    (250_000, 5.0e-10),
    (1_000_000, 2.0e-10),
]

protocols = [make_protocol_config("pure")]

print(f"{'nodes':>10} {'delay(s)':>12} {'theory(s)':>12} {'occupancy':>10} {'wall':>8}")
for num_nodes, beta in CASES:
    # An AnalyticContactModel is a mobility input like any trace generator,
    # but it carries only (N, beta, horizon) — no contact list is ever
    # materialised, which is what makes 10^6 nodes tractable.
    model = make_analytic_model(
        num_nodes=num_nodes, beta=beta, horizon=4_000_000.0
    )
    t0 = time.perf_counter()
    result = run_sweep(
        model,
        protocols,
        SweepConfig(
            loads=(10, 30, 50),
            replications=12,
            master_seed=11,
            sim=SimulationConfig(engine="ode"),
        ),
    )
    wall = time.perf_counter() - t0
    means = result.protocol_means("Pure epidemic")
    theory = math.log(num_nodes) / (beta * (num_nodes - 1))
    print(
        f"{num_nodes:>10,} {means['delay']:>12.0f} {theory:>12.0f} "
        f"{means['buffer_occupancy']:>10.3%} {wall:>7.2f}s"
    )

print(
    "\nEvery sweep above finishes in well under a second; the DES would need "
    "days at 10^6\nnodes. The surrogate delay tracks the ln(N)/(beta*(N-1)) "
    "law because at this scale\nthe stochastic epidemic is indistinguishable "
    "from its fluid limit."
)
