#!/usr/bin/env python3
"""Quickstart: compare two epidemic protocols on a synthetic campus trace.

Generates the 12-node, 5-day campus contact trace (the stand-in for the
CRAWDAD Haggle dataset), runs a small load sweep for P-Q epidemic and
epidemic-with-immunity, and prints the delivery/delay/buffer results.

Run:  python examples/quickstart.py
"""

from repro import (
    CampusTraceGenerator,
    SweepConfig,
    compute_trace_stats,
    make_protocol_config,
    run_sweep,
)

# 1. A mobility input. Every mobility model produces a ContactTrace; the
#    simulator never cares where contacts came from.
trace = CampusTraceGenerator(seed=42).generate()
stats = compute_trace_stats(trace)
print(
    f"trace: {stats.num_contacts} contacts between {stats.num_nodes} nodes "
    f"over {stats.horizon / 86400:.1f} days "
    f"(median encounter gap per node: {stats.intercontact_node.median:.0f}s)"
)

# 2. Protocols under test, by registry name. Parameters mirror the paper.
protocols = [
    make_protocol_config("pq", p=1.0, q=1.0),
    make_protocol_config("immunity"),
]

# 3. The paper's experiment: k bundles from a random source to a random
#    destination, k swept over the loads, replicated with fresh endpoints.
result = run_sweep(
    trace,
    protocols,
    SweepConfig(loads=(5, 15, 25), replications=3, master_seed=42),
)

# 4. Results aggregate into figure-ready series or whole-sweep means.
print(f"\nran {len(result)} simulations\n")
print(f"{'protocol':<28} {'delivery':>9} {'delay(s)':>12} {'buffer':>8}")
for label in result.protocols():
    means = result.protocol_means(label)
    print(
        f"{label:<28} {means['delivery_ratio']:>9.2%} "
        f"{means['delay']:>12.0f} {means['buffer_occupancy']:>8.2%}"
    )

print(
    "\nImmunity purges delivered bundles from buffers, so it delivers the "
    "same bundles\nwith a fraction of the buffer footprint — the paper's "
    "core observation."
)
