"""Setuptools shim.

Allows ``pip install -e . --no-use-pep517`` in offline environments that
lack the ``wheel`` package (the PEP 660 editable path needs bdist_wheel).
All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
