"""Setuptools packaging for the repro library.

Kept as a plain ``setup.py`` (no ``pyproject.toml``) so
``pip install -e . --no-use-pep517`` works in offline environments that
lack the ``wheel`` package (the PEP 660 editable path needs bdist_wheel).

``package_data`` ships the ``py.typed`` marker (PEP 561) so downstream
type checkers consume the library's inline annotations — the mypy-strict
ratchet in ``mypy.ini`` keeps the core modules' annotations honest.
"""

from setuptools import find_packages, setup

setup(
    name="repro-epidemic-routing",
    version="0.6.0",
    description=(
        "Reproduction of 'A Unified Study of Epidemic Routing Protocols "
        "and their Enhancements' (IPDPSW 2012)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    package_data={"repro": ["py.typed"]},
    python_requires=">=3.10",
    install_requires=["numpy"],
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
