"""Fig. 11 — buffer occupancy level vs load on the campus trace.

Paper shape: P-Q (no purge mechanism) runs the fullest buffers past load
10; immunity sits below it; TTL's expiring copies keep buffers near empty.
"""


def test_fig11_buf_trace(benchmark):
    from conftest import run_experiment_benchmark

    fig = run_experiment_benchmark(benchmark, "fig11")
    pq = fig.series_by_label("P-Q epidemic (P=1, Q=1)")
    imm = fig.series_by_label("Epidemic with immunity")
    ttl = fig.series_by_label("Epidemic with TTL=300")
    # orderings at the highest load
    assert pq.values[-1] > imm.values[-1] > ttl.values[-1]
    # P-Q buffers run high under load (paper: >80%; bench scale: >60%)
    assert pq.values[-1] > 0.6
    assert ttl.values[-1] < 0.1
