"""Fig. 14 — constant-TTL delivery under interval 400 vs 2000 scenarios.

Paper shape: stretching the inter-encounter interval from 400 to 2000 s
costs constant TTL=300 roughly 20% delivery. In our reproduction the
*direction* holds but the gap is small: with TTL renewal only at
transmission time, a relayed copy must survive interval + residual contact
+ one transmission time before its next forwarding chance, which already
exceeds 300 s in the 400-second scenario for most draws — constant TTL is
relay-dead in *both* regimes and delivery is dominated by the (identical)
direct path. EXPERIMENTS.md discusses this deviation; the interval
sensitivity the paper is after shows up strongly in the dynamic-TTL
interval curves of Figs 15/17 instead.
"""


def test_fig14_interval(benchmark):
    from conftest import run_experiment_benchmark

    fig = run_experiment_benchmark(benchmark, "fig14")
    short = fig.series_by_label("Interval time = 400")
    long = fig.series_by_label("Interval time = 2000")
    # direction: stretching intervals never helps constant TTL
    assert sum(short.values) >= sum(long.values) - 1e-9
