"""Fig. 17 — buffer occupancy, modified vs unmodified protocols, RWP.

Paper headlines: EC+TTL cuts EC's occupancy; cumulative immunity cuts
immunity's by >= 15%; dynamic TTL buffers more than constant TTL.
"""


def test_fig17_buf_rwp(benchmark):
    from conftest import run_experiment_benchmark

    fig = run_experiment_benchmark(benchmark, "fig17")
    dyn = fig.series_by_label("Epidemic with dynamic TTL (x2)")
    ttl = fig.series_by_label("Epidemic with TTL=300")
    ec = fig.series_by_label("Epidemic with EC")
    ecttl = fig.series_by_label("Epidemic with EC+TTL (thr=8)")
    imm = fig.series_by_label("Epidemic with immunity")
    cum = fig.series_by_label("Epidemic with cumulative immunity")
    assert sum(ecttl.values) <= sum(ec.values)
    assert sum(cum.values) <= 0.85 * sum(imm.values)  # >= 15% lower
    assert sum(dyn.values) >= sum(ttl.values)
