"""Fig. 15 — delivery ratio, modified vs unmodified protocols, RWP
(plus the interval-scenario TTL curves the paper overlays)."""


def test_fig15_delivery_rwp(benchmark):
    from conftest import run_experiment_benchmark

    fig = run_experiment_benchmark(benchmark, "fig15")
    assert len(fig.series) == 10
    dyn = fig.series_by_label("Epidemic with dynamic TTL (x2)")
    ttl = fig.series_by_label("Epidemic with TTL=300")
    ec = fig.series_by_label("Epidemic with EC")
    ecttl = fig.series_by_label("Epidemic with EC+TTL (thr=8)")
    imm = fig.series_by_label("Epidemic with immunity")
    cum = fig.series_by_label("Epidemic with cumulative immunity")
    # every enhancement at least matches its original on delivery
    assert sum(dyn.values) >= sum(ttl.values)
    assert sum(ecttl.values) >= sum(ec.values)
    assert sum(cum.values) >= sum(imm.values) - 0.05 * len(imm.values)
