"""Extension — the comparison the paper motivates but doesn't run:
flooding (epidemic/immunity) vs controlled replication (Spray-and-Wait)
vs statistical forwarding (PRoPHET), on identical inputs.

Expected shape: flooding buys delay/delivery with transmissions; spray
caps transmissions at L per bundle; PRoPHET sits in between.
"""

from conftest import BENCH_SCALE, BENCH_SEED

from repro.analysis.ascii_plot import render_series_table
from repro.core.protocols import make_protocol_config
from repro.core.sweep import SweepConfig, run_sweep
from repro.mobility.synthetic import CampusTraceGenerator


def test_extension_families(benchmark):
    trace = CampusTraceGenerator(seed=BENCH_SEED).generate()
    protos = [
        make_protocol_config("immunity"),
        make_protocol_config("spray_wait", initial_tokens=6),
        make_protocol_config("prophet"),
    ]
    cfg = SweepConfig(
        loads=BENCH_SCALE.loads,
        replications=BENCH_SCALE.replications,
        master_seed=BENCH_SEED,
    )
    result = benchmark.pedantic(
        lambda: run_sweep(trace, protos, cfg), rounds=1, iterations=1
    )
    print()
    print("==== Extension: routing families on the campus trace ====")
    print("delivery ratio:")
    print(render_series_table(result.delivery_ratio_series()))
    print("transmissions per run:")
    print(
        render_series_table(
            result.series(lambda r: float(r.transmissions)), value_fmt="{:.0f}"
        )
    )
    imm = result.protocol_means("Epidemic with immunity")
    spray = result.protocol_means("Binary Spray-and-Wait (L=6)")
    # flooding delivers at least as much; spray transmits far less
    assert imm["delivery_ratio"] >= spray["delivery_ratio"] - 1e-9
    tx = result.series(lambda r: float(r.transmissions))
    tx_by = {s.label: sum(s.values) for s in tx}
    assert tx_by["Binary Spray-and-Wait (L=6)"] < 0.7 * tx_by["Epidemic with immunity"]