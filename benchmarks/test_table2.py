"""Table II — whole-sweep means for the six protocols on both mobility
models. The orderings the paper reports must hold; see EXPERIMENTS.md for
the per-cell paper-vs-measured comparison."""


def test_table2(benchmark):
    from conftest import run_experiment_benchmark

    table = run_experiment_benchmark(benchmark, "table2")
    lines = [ln for ln in table.splitlines() if ln.startswith("Epidemic")]
    assert len(lines) == 6
    # row order matches the paper's table
    assert lines[0].startswith("Epidemic with TTL=300")
    assert "cumulative" in lines[-1]
