"""Fig. 9 — bundle duplication rate vs load on the campus trace.

Paper shape: immunity spreads bundles the widest while they are alive;
TTL's short-lived copies give the lowest duplication.
"""


def test_fig09_dup_trace(benchmark):
    from conftest import run_experiment_benchmark

    fig = run_experiment_benchmark(benchmark, "fig09")
    assert len(fig.series) == 4
    imm = fig.series_by_label("Epidemic with immunity")
    ttl = fig.series_by_label("Epidemic with TTL=300")
    assert sum(imm.values) >= sum(ttl.values)
    assert all(0.0 <= v <= 1.0 for s in fig.series for v in s.values)
