"""Fig. 13 — delivery ratio of EC vs TTL on the campus trace.

Paper shape: both degrade as the load grows; EC stays above TTL.
"""


def test_fig13_delivery_trace(benchmark):
    from conftest import run_experiment_benchmark

    fig = run_experiment_benchmark(benchmark, "fig13")
    ec = fig.series_by_label("Epidemic with EC")
    ttl = fig.series_by_label("Epidemic with TTL=300")
    # degradation with load
    assert ec.values[-1] < ec.values[0]
    assert ttl.values[-1] < ttl.values[0]
    # EC at or above TTL across the sweep
    assert sum(ec.values) >= sum(ttl.values)
