"""Ablation — the constant-TTL sweep of Section IV (50..300 s).

Paper finding: small TTLs discard bundles prematurely; delivery grows with
the TTL value over this range.
"""

from conftest import BENCH_SCALE, BENCH_SEED

from repro.analysis.ascii_plot import render_series_table
from repro.core.protocols import make_protocol_config
from repro.core.sweep import SweepConfig, run_sweep
from repro.mobility.synthetic import CampusTraceGenerator

TTLS = (50.0, 100.0, 150.0, 200.0, 300.0)


def test_ablation_ttl(benchmark):
    trace = CampusTraceGenerator(seed=BENCH_SEED).generate()
    protos = [make_protocol_config("ttl", ttl=t) for t in TTLS]
    cfg = SweepConfig(
        loads=BENCH_SCALE.loads,
        replications=BENCH_SCALE.replications,
        master_seed=BENCH_SEED,
    )
    result = benchmark.pedantic(
        lambda: run_sweep(trace, protos, cfg), rounds=1, iterations=1
    )
    series = result.delivery_ratio_series()
    print()
    print("==== Ablation: constant TTL sweep (delivery ratio, trace) ====")
    print(render_series_table(series))
    totals = [sum(s.values) for s in series]  # ordered by TTL ascending
    assert totals[-1] >= totals[0]  # TTL=300 at least matches TTL=50
