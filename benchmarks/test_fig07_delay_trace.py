"""Fig. 7 — delay vs load on the campus trace (P-Q, TTL, EC).

Paper shape: delays grow with load into the 10^5 s range; constant TTL sits
above P-Q (its relayed copies die, so completion leans on rarer direct
meetings).
"""

import math


def test_fig07_delay_trace(benchmark):
    from conftest import run_experiment_benchmark

    fig = run_experiment_benchmark(benchmark, "fig07")
    assert len(fig.series) == 3
    pq = fig.series_by_label("P-Q epidemic (P=1, Q=1)")
    ttl = fig.series_by_label("Epidemic with TTL=300")
    finite_pq = [v for v in pq.values if math.isfinite(v)]
    assert finite_pq, "P-Q must complete at least one load level"
    # delays reach the paper's order of magnitude (10^4..10^5 s)
    assert max(finite_pq) > 1e4
    # TTL's successful runs are never faster on average than P-Q's
    paired = [
        (t, p)
        for t, p in zip(ttl.values, pq.values, strict=True)
        if math.isfinite(t) and math.isfinite(p)
    ]
    if paired:
        assert sum(t for t, _ in paired) >= 0.8 * sum(p for _, p in paired)
