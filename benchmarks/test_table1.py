"""Table I — prior-study parameter survey (static reproduction)."""


def test_table1(benchmark):
    from conftest import run_experiment_benchmark

    table = run_experiment_benchmark(benchmark, "table1")
    assert "Random Waypoint" in table
    assert "<= 300 m" in table
