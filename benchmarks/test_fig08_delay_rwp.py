"""Fig. 8 — delay vs load under RWP (P-Q, TTL, immunity, EC).

Paper shape: immunity delivers fastest (purged buffers keep relaying
effective); EC/P-Q slowest at high load.
"""

import math


def test_fig08_delay_rwp(benchmark):
    from conftest import run_experiment_benchmark

    fig = run_experiment_benchmark(benchmark, "fig08")
    assert len(fig.series) == 4
    imm = fig.series_by_label("Epidemic with immunity")
    pq = fig.series_by_label("P-Q epidemic (P=1, Q=1)")
    paired = [
        (i, p)
        for i, p in zip(imm.values, pq.values, strict=True)
        if math.isfinite(i) and math.isfinite(p)
    ]
    assert paired
    assert sum(i for i, _ in paired) <= sum(p for _, p in paired) + 1e-9
