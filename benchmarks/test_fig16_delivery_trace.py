"""Fig. 16 — delivery ratio, modified vs unmodified protocols, trace.

Paper headline: EC+TTL improves delivery over EC by at least 40% (relative)
at high loads; dynamic TTL beats constant TTL; cumulative == immunity.
"""


def test_fig16_delivery_trace(benchmark):
    from conftest import run_experiment_benchmark

    fig = run_experiment_benchmark(benchmark, "fig16")
    assert len(fig.series) == 6
    dyn = fig.series_by_label("Epidemic with dynamic TTL (x2)")
    ttl = fig.series_by_label("Epidemic with TTL=300")
    ec = fig.series_by_label("Epidemic with EC")
    ecttl = fig.series_by_label("Epidemic with EC+TTL (thr=8)")
    imm = fig.series_by_label("Epidemic with immunity")
    cum = fig.series_by_label("Epidemic with cumulative immunity")
    assert sum(dyn.values) >= sum(ttl.values)
    # the EC+TTL high-load gain (paper: >= 40% relative at high loads)
    assert ecttl.values[-1] >= 1.2 * ec.values[-1]
    # cumulative immunity is a buffer policy: delivery matches immunity
    for c, i in zip(cum.values, imm.values, strict=True):
        assert abs(c - i) <= 0.05
