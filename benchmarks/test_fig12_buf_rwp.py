"""Fig. 12 — buffer occupancy level vs load under RWP."""


def test_fig12_buf_rwp(benchmark):
    from conftest import run_experiment_benchmark

    fig = run_experiment_benchmark(benchmark, "fig12")
    pq = fig.series_by_label("P-Q epidemic (P=1, Q=1)")
    imm = fig.series_by_label("Epidemic with immunity")
    ttl = fig.series_by_label("Epidemic with TTL=300")
    assert pq.values[-1] > imm.values[-1] > ttl.values[-1]
    assert pq.values[-1] > 0.5
