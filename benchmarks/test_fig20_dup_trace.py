"""Fig. 20 — duplication rate, modified vs unmodified protocols, trace."""


def test_fig20_dup_trace(benchmark):
    from conftest import run_experiment_benchmark

    fig = run_experiment_benchmark(benchmark, "fig20")
    assert len(fig.series) == 6
    dyn = fig.series_by_label("Epidemic with dynamic TTL (x2)")
    ttl = fig.series_by_label("Epidemic with TTL=300")
    imm = fig.series_by_label("Epidemic with immunity")
    cum = fig.series_by_label("Epidemic with cumulative immunity")
    assert sum(dyn.values) >= sum(ttl.values) - 0.02 * len(ttl.values)
    assert sum(cum.values) <= sum(imm.values) + 1e-9
