"""Ablation — buffer-size sensitivity (DESIGN.md design-choice check).

The paper fixes buffers at 10 bundles; this ablation shows how the
P-Q/immunity comparison scales with the buffer, confirming the qualitative
conclusions are not an artefact of the specific capacity.
"""

from conftest import BENCH_SEED

from repro.core.protocols import make_protocol_config
from repro.core.simulation import SimulationConfig
from repro.core.sweep import SweepConfig, run_sweep
from repro.mobility.synthetic import CampusTraceGenerator

CAPACITIES = (5, 10, 20)


def test_ablation_buffer(benchmark):
    trace = CampusTraceGenerator(seed=BENCH_SEED).generate()

    def sweep_all():
        out = {}
        for cap in CAPACITIES:
            cfg = SweepConfig(
                loads=(30,),
                replications=3,
                master_seed=BENCH_SEED,
                sim=SimulationConfig(buffer_capacity=cap),
            )
            out[cap] = run_sweep(
                trace,
                [make_protocol_config("pq"), make_protocol_config("immunity")],
                cfg,
            )
        return out

    results = benchmark.pedantic(sweep_all, rounds=1, iterations=1)
    print()
    print("==== Ablation: buffer capacity at load 30 (trace) ====")
    print(f"{'capacity':>9} {'protocol':<28} {'delivery':>9} {'occupancy':>10}")
    for cap, sweep in results.items():
        for label in sweep.protocols():
            m = sweep.protocol_means(label)
            print(
                f"{cap:>9} {label:<28} {m['delivery_ratio']:>9.2f} "
                f"{m['buffer_occupancy']:>10.2f}"
            )
    for sweep in results.values():
        imm = sweep.protocol_means("Epidemic with immunity")
        pq = sweep.protocol_means("P-Q epidemic (P=1, Q=1)")
        # the paper's qualitative conclusion holds at every capacity
        assert imm["delivery_ratio"] >= pq["delivery_ratio"] - 1e-9
        assert imm["buffer_occupancy"] <= pq["buffer_occupancy"] + 1e-9
