"""Ablation — signaling overhead: per-bundle vs cumulative immunity tables.

The abstract's claim: cumulative immunity incurs "an order of magnitude
less signaling overheads" while matching delivery. Also covers the
original P-Q anti-packet variant for reference.
"""

from conftest import BENCH_SCALE, BENCH_SEED

from repro.analysis.ascii_plot import render_series_table
from repro.core.protocols import make_protocol_config
from repro.core.sweep import SweepConfig, run_sweep
from repro.mobility.synthetic import CampusTraceGenerator


def test_ablation_overhead(benchmark):
    trace = CampusTraceGenerator(seed=BENCH_SEED).generate()
    protos = [
        make_protocol_config("immunity"),
        make_protocol_config("cumulative_immunity"),
        make_protocol_config("pq", p=1.0, q=1.0, anti_packets=True),
    ]
    cfg = SweepConfig(
        loads=BENCH_SCALE.loads,
        replications=BENCH_SCALE.replications,
        master_seed=BENCH_SEED,
    )
    result = benchmark.pedantic(
        lambda: run_sweep(trace, protos, cfg), rounds=1, iterations=1
    )
    print()
    print("==== Ablation: control units transmitted (trace) ====")
    print(render_series_table(result.signaling_series(), value_fmt="{:.0f}"))
    imm = result.protocol_means("Epidemic with immunity")
    cum = result.protocol_means("Epidemic with cumulative immunity")
    assert cum["signaling_overhead"] > 0
    ratio = imm["signaling_overhead"] / cum["signaling_overhead"]
    print(f"per-bundle / cumulative signaling ratio: {ratio:.1f}x")
    assert ratio >= 8.0  # the order-of-magnitude claim
    assert abs(imm["delivery_ratio"] - cum["delivery_ratio"]) < 0.05
