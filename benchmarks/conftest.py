"""Benchmark harness shared machinery.

Every benchmark regenerates one paper artefact end-to-end — mobility
generation, the full (protocol × load × replication) sweep, and figure/table
assembly — at a trimmed ``bench`` scale (3 loads × 2 replications) so the
whole suite stays in CI territory, and prints the same rows/series the paper
reports. Run the full paper grid with ``python -m repro run all --scale
paper``.

Each artefact is built exactly once (``pedantic(rounds=1)``): a sweep is a
long-running deterministic experiment, not a microbenchmark.
"""

from __future__ import annotations

import pytest

from repro.analysis.ascii_plot import render_series_table
from repro.analysis.figures import FigureData
from repro.experiments.registry import get_experiment
from repro.experiments.runner import ExperimentRunner, Scale

#: Trimmed sweep grid for benchmarks. Three replications are the minimum
#: that mixes easy and hard endpoint draws on the campus friendship graph.
BENCH_SCALE = Scale("bench", (5, 30, 50), 3)
BENCH_SEED = 7


def run_experiment_benchmark(benchmark, exp_id: str) -> FigureData | str:
    """Benchmark one registered experiment and print its rows."""

    def target():
        runner = ExperimentRunner(scale=BENCH_SCALE, seed=BENCH_SEED)
        return get_experiment(exp_id).build(runner)

    artefact = benchmark.pedantic(target, rounds=1, iterations=1)
    exp = get_experiment(exp_id)
    print()
    print(f"==== {exp.title} [bench scale: loads={BENCH_SCALE.loads}, "
          f"reps={BENCH_SCALE.replications}] ====")
    if isinstance(artefact, FigureData):
        print(render_series_table(artefact.series))
    else:
        print(artefact)
    return artefact


@pytest.fixture
def bench_runner():
    """A fresh bench-scale runner for ablation benchmarks."""
    return ExperimentRunner(scale=BENCH_SCALE, seed=BENCH_SEED)
