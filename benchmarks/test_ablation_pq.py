"""Ablation — the P/Q probability sweep of Section IV (P, Q in {0.1, 0.5, 1}).

Paper finding: "the probability of transmissions as used in P-Q epidemic
may increase delay and decrease delivery ratio" — every missed encounter
slot must be bought back with a later (rare) encounter. The delay effect is
the robust one; delivery can occasionally *benefit* from low probabilities
at high load because fewer transmissions also mean less drop-tail buffer
clogging — which the printed table makes visible.
"""

import math

from conftest import BENCH_SCALE, BENCH_SEED

from repro.analysis.ascii_plot import render_series_table
from repro.core.protocols import make_protocol_config
from repro.core.sweep import SweepConfig, run_sweep
from repro.mobility.synthetic import CampusTraceGenerator


def test_ablation_pq(benchmark):
    trace = CampusTraceGenerator(seed=BENCH_SEED).generate()
    protos = [
        make_protocol_config("pq", p=p, q=p) for p in (0.1, 0.5, 1.0)
    ]
    cfg = SweepConfig(
        loads=BENCH_SCALE.loads,
        replications=BENCH_SCALE.replications,
        master_seed=BENCH_SEED,
    )
    result = benchmark.pedantic(
        lambda: run_sweep(trace, protos, cfg), rounds=1, iterations=1
    )
    print()
    print("==== Ablation: P-Q probability sweep (trace) ====")
    print("delivery ratio:")
    print(render_series_table(result.delivery_ratio_series()))
    print("average delay (successful runs):")
    print(render_series_table(result.delay_series(), value_fmt="{:.0f}"))

    def mean_delay(label):
        vals = [
            v
            for v in result.series(lambda r: r.delay, label=label)[0].values
            if math.isfinite(v)
        ]
        return sum(vals) / len(vals)

    # the paper's delay finding: lower probabilities slow delivery down
    assert mean_delay("P-Q epidemic (P=0.1, Q=0.1)") >= mean_delay(
        "P-Q epidemic (P=1, Q=1)"
    )
