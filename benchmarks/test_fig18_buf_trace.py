"""Fig. 18 — buffer occupancy, modified vs unmodified protocols, trace."""


def test_fig18_buf_trace(benchmark):
    from conftest import run_experiment_benchmark

    fig = run_experiment_benchmark(benchmark, "fig18")
    ec = fig.series_by_label("Epidemic with EC")
    ecttl = fig.series_by_label("Epidemic with EC+TTL (thr=8)")
    imm = fig.series_by_label("Epidemic with immunity")
    cum = fig.series_by_label("Epidemic with cumulative immunity")
    ttl = fig.series_by_label("Epidemic with TTL=300")
    dyn = fig.series_by_label("Epidemic with dynamic TTL (x2)")
    assert sum(ecttl.values) <= sum(ec.values)
    assert sum(cum.values) <= 0.85 * sum(imm.values)
    assert sum(dyn.values) >= sum(ttl.values)
