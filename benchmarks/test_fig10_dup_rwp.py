"""Fig. 10 — bundle duplication rate vs load under RWP."""


def test_fig10_dup_rwp(benchmark):
    from conftest import run_experiment_benchmark

    fig = run_experiment_benchmark(benchmark, "fig10")
    assert len(fig.series) == 4
    imm = fig.series_by_label("Epidemic with immunity")
    ttl = fig.series_by_label("Epidemic with TTL=300")
    assert sum(imm.values) >= sum(ttl.values)
