"""Fig. 19 — duplication rate, modified vs unmodified protocols, RWP.

Paper shape: enhancements slightly raise duplication (more useful copies),
except cumulative immunity which must not exceed immunity.
"""


def test_fig19_dup_rwp(benchmark):
    from conftest import run_experiment_benchmark

    fig = run_experiment_benchmark(benchmark, "fig19")
    dyn = fig.series_by_label("Epidemic with dynamic TTL (x2)")
    ttl = fig.series_by_label("Epidemic with TTL=300")
    imm = fig.series_by_label("Epidemic with immunity")
    cum = fig.series_by_label("Epidemic with cumulative immunity")
    assert sum(dyn.values) >= sum(ttl.values) - 0.02 * len(ttl.values)
    assert sum(cum.values) <= sum(imm.values) + 1e-9
