"""Developer tooling for the repo: benchmarks and the ``reprolint`` suite.

The benchmark scripts (``bench_*.py``, ``calibrate.py``) are plain
scripts; :mod:`tools.lintkit` is an importable package so the static
analyzer can run as ``python -m tools.lintkit`` and be unit-tested.
"""
