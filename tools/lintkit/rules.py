"""The reprolint rule set — this repo's machine-checked invariants.

Every performance PR in this repo is shippable only because the suite can
prove bit-identical results against golden pins. That guarantee dies
silently the moment someone iterates an unordered ``set`` into the event
queue, draws from an unseeded RNG, or slips an attribute-dict class into
the DES hot path. Each rule below encodes one such invariant; the README
section "Static analysis & determinism guarantees" documents the why in
detail and ties each rule to the golden-pin methodology.

Rule inventory:

========  ========================================================
DET001    no unseeded ``random`` / ``np.random`` draws outside
          ``des/rng.py`` (every stream derives from the master seed)
DET002    no iteration over ``set``/``frozenset`` (or ``.keys()`` /
          ``.items()`` without ``sorted(...)``) in the event-path
          modules that schedule events, pick transfer candidates, or
          feed RNG streams
DET003    no wall-clock reads (``time.time`` etc.) inside
          ``src/repro`` — simulation results must be functions of the
          seed, never of when they ran
HOT001    classes in ``des/`` and ``core/bundle.py`` must declare
          ``__slots__`` (the per-event allocation path)
HOT002    no per-event closure allocation: lambdas /
          ``functools.partial`` must not be passed to ``schedule*`` /
          ``at`` / ``after`` / ``push``
HOT003    no Python-level per-contact ``for`` loops (incl.
          comprehensions) over the contact columns inside the SoA
          sweep kernel — contact streams are swept with ``while`` +
          vectorized chunk scans, never element-wise Python iteration
SPEC001   every serialisable spec/config dataclass field must appear
          in its JSON round-trip (``to_dict`` *and* ``from_dict``),
          and every ``SimulationConfig`` knob must be mirrored by
          ``ScenarioSpec``
API001    public registry-facing classes/functions must carry a
          docstring
========  ========================================================
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from tools.lintkit.engine import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Rule,
    SourceFile,
    Violation,
)

# ---------------------------------------------------------------------------
# DET001 — unseeded randomness


class UnseededRandomRule(Rule):
    """Randomness must flow through :mod:`repro.des.rng` seed derivation."""

    rule_id = "DET001"
    severity = SEVERITY_ERROR
    description = (
        "unseeded random draw: use repro.des.rng streams (master-seed "
        "derived), never stdlib random or numpy's global/unseeded RNG"
    )
    paths = ("src/repro/*",)
    exclude = ("src/repro/des/rng.py",)

    #: ``numpy.random`` module-level draw functions (the legacy global
    #: RandomState surface) — all of them bypass seed derivation.
    _NP_DRAWS = frozenset(
        {
            "seed", "random", "rand", "randn", "randint", "random_sample",
            "ranf", "sample", "choice", "shuffle", "permutation", "uniform",
            "normal", "standard_normal", "exponential", "poisson", "binomial",
            "beta", "gamma", "bytes", "integers", "get_state", "set_state",
        }
    )

    def check(self, src: SourceFile) -> Iterator[Violation]:
        random_aliases: set[str] = set()  # names bound to stdlib random
        numpy_aliases: set[str] = set()  # names bound to numpy
        npr_aliases: set[str] = set()  # names bound to numpy.random
        default_rng_aliases: set[str] = set()  # from numpy.random import default_rng
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    if alias.name == "random":
                        random_aliases.add(bound)
                    elif alias.name == "numpy":
                        numpy_aliases.add(bound)
                    elif alias.name == "numpy.random":
                        if alias.asname:
                            npr_aliases.add(alias.asname)
                        else:
                            numpy_aliases.add("numpy")
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "random":
                    yield self.violation(
                        src,
                        node,
                        "import from stdlib random: draws bypass the "
                        "master-seed derivation in repro.des.rng",
                    )
                elif node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            npr_aliases.add(alias.asname or "random")
                elif node.module == "numpy.random":
                    for alias in node.names:
                        if alias.name == "default_rng":
                            default_rng_aliases.add(alias.asname or "default_rng")
                        elif alias.name in self._NP_DRAWS:
                            yield self.violation(
                                src,
                                node,
                                f"numpy.random.{alias.name} is a global-state "
                                "draw; derive a Generator via repro.des.rng",
                            )

        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                value = func.value
                # random.<anything>(...)
                if isinstance(value, ast.Name) and value.id in random_aliases:
                    yield self.violation(
                        src,
                        node,
                        f"random.{func.attr}() draws from the process-global "
                        "stdlib RNG; use a repro.des.rng stream",
                    )
                    continue
                # np.random.<draw>(...) / numpy.random.<draw>(...)
                is_np_random = (
                    isinstance(value, ast.Attribute)
                    and value.attr == "random"
                    and isinstance(value.value, ast.Name)
                    and value.value.id in numpy_aliases
                ) or (isinstance(value, ast.Name) and value.id in npr_aliases)
                if is_np_random:
                    if func.attr in self._NP_DRAWS:
                        yield self.violation(
                            src,
                            node,
                            f"np.random.{func.attr}() uses numpy's global "
                            "RNG state; derive a Generator via repro.des.rng",
                        )
                    elif func.attr == "default_rng" and not (
                        node.args or node.keywords
                    ):
                        yield self.violation(
                            src,
                            node,
                            "np.random.default_rng() without a seed is "
                            "entropy-seeded; derive the seed via repro.des.rng",
                        )
            elif isinstance(func, ast.Name) and func.id in default_rng_aliases:
                if not (node.args or node.keywords):
                    yield self.violation(
                        src,
                        node,
                        "default_rng() without a seed is entropy-seeded; "
                        "derive the seed via repro.des.rng",
                    )


# ---------------------------------------------------------------------------
# DET002 — unordered iteration on the event path


def _annotation_names_set(node: ast.expr | None) -> bool:
    """True when an annotation is (a union of) ``set`` / ``frozenset``."""
    if node is None:
        return False
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return False
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return _annotation_names_set(node.left) or _annotation_names_set(node.right)
    if isinstance(node, ast.Subscript):
        return _annotation_names_set(node.value)
    return isinstance(node, ast.Name) and node.id in ("set", "frozenset")


def _is_set_expr(node: ast.expr, set_names: set[str]) -> bool:
    """True when ``node`` statically evaluates to a set/frozenset."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return True
    if isinstance(node, ast.Name) and node.id in set_names:
        return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
        # set algebra (a | b, a & b, a - b) on known sets
        return _is_set_expr(node.left, set_names) or _is_set_expr(node.right, set_names)
    return False


class UnorderedIterationRule(Rule):
    """Set/dict iteration order must never feed the event path.

    Python ``set``/``frozenset`` iteration order is a function of element
    hashes and insertion history — not of program semantics. On the
    modules that schedule events, pick transfer candidates, or feed RNG
    streams, iterating one unsorted is exactly the class of bug the
    golden pins cannot catch until it has already shipped (the pins
    themselves are recorded under one hash layout). ``dict.keys()`` /
    ``dict.items()`` are insertion-ordered, but on these modules the
    insertion order is itself contact-processing order, so they must be
    ``sorted(...)`` before feeding anything order-sensitive.
    """

    rule_id = "DET002"
    severity = SEVERITY_ERROR
    description = (
        "iteration over set/frozenset (or .keys()/.items() without "
        "sorted(...)) in event-scheduling / candidate-selection code"
    )
    paths = (
        "src/repro/des/*",
        "src/repro/core/simulation.py",
        "src/repro/core/planner.py",
        "src/repro/core/session.py",
        "src/repro/core/knowledge.py",
        "src/repro/core/sweepkernel.py",
    )

    def check(self, src: SourceFile) -> Iterator[Violation]:
        # Collect names with set-typed annotations (params and AnnAssign)
        # and names assigned from set-valued expressions, per enclosing
        # function scope; module scope is one more "function".
        scopes: list[ast.AST] = [src.tree]
        scopes.extend(
            n
            for n in ast.walk(src.tree)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
        )
        for scope in scopes:
            yield from self._check_scope(src, scope)

    def _scope_set_names(self, scope: ast.AST) -> set[str]:
        names: set[str] = set()
        if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            args = scope.args
            for arg in (
                *args.posonlyargs, *args.args, *args.kwonlyargs,
                *((args.vararg,) if args.vararg else ()),
                *((args.kwarg,) if args.kwarg else ()),
            ):
                if _annotation_names_set(arg.annotation):
                    names.add(arg.arg)
        for node in self._scope_body_walk(scope):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name) and _is_set_expr(node.value, names):
                    names.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                if _annotation_names_set(node.annotation):
                    names.add(node.target.id)
        return names

    def _scope_body_walk(self, scope: ast.AST) -> Iterator[ast.AST]:
        """Walk ``scope`` without descending into nested function scopes."""
        body = scope.body if not isinstance(scope, ast.Lambda) else [scope.body]
        stack: list[ast.AST] = list(body) if isinstance(body, list) else [body]
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            stack.extend(ast.iter_child_nodes(node))

    def _check_scope(self, src: SourceFile, scope: ast.AST) -> Iterator[Violation]:
        set_names = self._scope_set_names(scope)
        for node in self._scope_body_walk(scope):
            iters: list[ast.expr] = []
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                yield from self._check_iter(src, it, set_names)

    def _check_iter(
        self, src: SourceFile, it: ast.expr, set_names: set[str]
    ) -> Iterator[Violation]:
        if (
            isinstance(it, ast.Call)
            and isinstance(it.func, ast.Attribute)
            and it.func.attr in ("keys", "items")
            and not it.args
        ):
            yield self.violation(
                src,
                it,
                f".{it.func.attr}() iterated without sorted(...): insertion "
                "order is contact-processing order here and must not feed "
                "the event path",
            )
        elif _is_set_expr(it, set_names):
            yield self.violation(
                src,
                it,
                "iteration over a set/frozenset: ordering follows element "
                "hashes, not semantics — sort first (or restructure)",
            )


# ---------------------------------------------------------------------------
# DET003 — wall-clock reads


class WallClockRule(Rule):
    """Simulation results must be functions of the seed, not the clock.

    ``time.perf_counter`` / ``time.monotonic`` are allowed: they measure
    durations and cannot leak absolute wall time into results (the bench
    tools under ``tools/`` use them; they are outside this rule's scope
    anyway).
    """

    rule_id = "DET003"
    severity = SEVERITY_ERROR
    description = "wall-clock read (time.time / datetime.now / ...) in src/repro"
    paths = ("src/repro/*",)

    _TIME_BANNED = frozenset(
        {"time", "time_ns", "localtime", "gmtime", "ctime", "asctime", "strftime"}
    )
    _DATETIME_BANNED = frozenset({"now", "utcnow", "today"})

    def check(self, src: SourceFile) -> Iterator[Violation]:
        time_aliases: set[str] = set()
        datetime_mod_aliases: set[str] = set()
        datetime_cls_aliases: set[str] = set()
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        time_aliases.add(alias.asname or "time")
                    elif alias.name == "datetime":
                        datetime_mod_aliases.add(alias.asname or "datetime")
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "time":
                    for alias in node.names:
                        if alias.name in self._TIME_BANNED:
                            yield self.violation(
                                src,
                                node,
                                f"from time import {alias.name}: wall-clock "
                                "reads make runs irreproducible",
                            )
                elif node.module == "datetime":
                    for alias in node.names:
                        if alias.name in ("datetime", "date"):
                            datetime_cls_aliases.add(alias.asname or alias.name)
        for node in ast.walk(src.tree):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            func = node.func
            value = func.value
            if (
                isinstance(value, ast.Name)
                and value.id in time_aliases
                and func.attr in self._TIME_BANNED
            ):
                yield self.violation(
                    src,
                    node,
                    f"time.{func.attr}() reads the wall clock; simulation "
                    "state must depend only on the seed (for elapsed-time "
                    "display use time.perf_counter())",
                )
            elif func.attr in self._DATETIME_BANNED and (
                (isinstance(value, ast.Name) and value.id in datetime_cls_aliases)
                or (
                    isinstance(value, ast.Attribute)
                    and value.attr in ("datetime", "date")
                    and isinstance(value.value, ast.Name)
                    and value.value.id in datetime_mod_aliases
                )
            ):
                yield self.violation(
                    src,
                    node,
                    f"datetime {func.attr}() reads the wall clock; results "
                    "must not depend on when the run happened",
                )


# ---------------------------------------------------------------------------
# HOT001 — __slots__ on hot-path classes


def _decorator_name(node: ast.expr) -> str:
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _base_name(node: ast.expr) -> str:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Subscript):
        return _base_name(node.value)
    return ""


class SlotsRule(Rule):
    """Hot-path classes must not carry a per-instance ``__dict__``.

    ``des/`` and ``core/bundle.py`` allocate one object per scheduled
    event / stored copy — 10⁴–10⁶ per run. A class without ``__slots__``
    adds a dict allocation per instance and defeats the PR 4 hot-path
    work. Exempt: Enums, exceptions, dataclasses declared with
    ``slots=True``, and typing constructs (Protocol/NamedTuple/TypedDict).
    """

    rule_id = "HOT001"
    severity = SEVERITY_ERROR
    description = "class on the DES hot path must declare __slots__"
    paths = ("src/repro/des/*", "src/repro/core/bundle.py")

    _EXEMPT_BASES = frozenset(
        {
            "Enum", "IntEnum", "StrEnum", "Flag", "IntFlag",
            "Protocol", "TypingProtocol", "NamedTuple", "TypedDict",
            "Exception", "BaseException",
        }
    )

    def check(self, src: SourceFile) -> Iterator[Violation]:
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if self._exempt(node) or self._declares_slots(node):
                continue
            yield self.violation(
                src,
                node,
                f"class {node.name} is on the DES hot path but declares no "
                "__slots__ (per-instance __dict__ costs an allocation per "
                "event/copy)",
            )

    def _exempt(self, node: ast.ClassDef) -> bool:
        for base in node.bases:
            name = _base_name(base)
            if name in self._EXEMPT_BASES or name.endswith(("Error", "Exception", "Warning")):
                return True
        for dec in node.decorator_list:
            if _decorator_name(dec) == "dataclass" and isinstance(dec, ast.Call):
                for kw in dec.keywords:
                    if (
                        kw.arg == "slots"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is True
                    ):
                        return True
        return False

    def _declares_slots(self, node: ast.ClassDef) -> bool:
        for stmt in node.body:
            targets: list[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
            for t in targets:
                if isinstance(t, ast.Name) and t.id == "__slots__":
                    return True
        return False


# ---------------------------------------------------------------------------
# HOT002 — per-event closure allocation


class ScheduleClosureRule(Rule):
    """Schedulers take ``action, *args`` — never a per-event closure.

    The PR 4 event layout passes callback arguments positionally exactly
    so hot schedulers allocate no closure per event; a ``lambda`` (or
    ``functools.partial``) handed to ``at`` / ``after`` / ``push`` /
    ``schedule*`` silently reintroduces one allocation per scheduled
    event plus a cell-variable late-binding hazard.
    """

    rule_id = "HOT002"
    severity = SEVERITY_ERROR
    description = (
        "lambda/functools.partial passed to a schedule call "
        "(at/after/push/schedule*) allocates a closure per event"
    )
    paths = (
        "src/repro/des/*",
        "src/repro/core/simulation.py",
        "src/repro/core/session.py",
    )

    _SCHEDULERS = ("at", "after", "push", "schedule", "schedule_sorted")

    def check(self, src: SourceFile) -> Iterator[Violation]:
        for node in ast.walk(src.tree):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            if node.func.attr not in self._SCHEDULERS:
                continue
            args: list[ast.expr] = list(node.args)
            args.extend(kw.value for kw in node.keywords)
            for arg in args:
                # Walk the whole argument expression: a lambda fed through a
                # generator into schedule_sorted allocates one closure per
                # yielded event, same as passing it directly.
                for sub in ast.walk(arg):
                    if isinstance(sub, ast.Lambda):
                        yield self.violation(
                            src,
                            sub,
                            f"lambda passed to .{node.func.attr}(): pass the "
                            "callable and its arguments positionally instead "
                            "(action, *args) — no closure per event",
                        )
                    elif (
                        isinstance(sub, ast.Call)
                        and _decorator_name(sub.func) == "partial"
                    ):
                        yield self.violation(
                            src,
                            sub,
                            f"functools.partial passed to .{node.func.attr}(): "
                            "pass (action, *args) positionally instead",
                        )


# ---------------------------------------------------------------------------
# HOT003 — per-contact Python loops in the sweep kernel


class KernelContactLoopRule(Rule):
    """The sweep kernel must never iterate contact columns element-wise.

    ``repro.core.sweepkernel`` exists to replace per-contact Python work
    with integer-mask probes and chunked NumPy scans; its hot loops are
    deliberately ``while``-based so the skip scan can jump the cursor in
    bulk. A ``for`` loop (or comprehension) whose iterable names one of
    the contact-stream columns reintroduces exactly the per-element
    interpreter cost the kernel was built to elide — and tends to sneak
    in via innocent-looking bookkeeping patches.
    """

    rule_id = "HOT003"
    severity = SEVERITY_ERROR
    description = (
        "Python-level for loop over a contact column inside the sweep "
        "kernel (use while + vectorized chunk scans)"
    )
    paths = ("src/repro/core/sweepkernel.py",)

    #: identifiers that name the contact-stream columns (module locals,
    #: attributes, and the columnar-arrays tuple elements)
    _CONTACT_NAMES = frozenset(
        {
            "contacts", "starts", "ends", "a_ids", "b_ids",
            "live", "live_starts", "live_ends", "live_a", "live_b",
            "_live_a", "_live_b", "starts_l", "ends_l", "a_l", "b_l",
            "zero_mask", "n_fire",
        }
    )

    def check(self, src: SourceFile) -> Iterator[Violation]:
        for node in ast.walk(src.tree):
            iters: list[ast.expr] = []
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                named = {
                    sub.id for sub in ast.walk(it) if isinstance(sub, ast.Name)
                }
                named |= {
                    sub.attr for sub in ast.walk(it) if isinstance(sub, ast.Attribute)
                }
                hits = sorted(named & self._CONTACT_NAMES)
                if hits:
                    yield self.violation(
                        src,
                        it,
                        f"per-contact Python iteration over {hits[0]!r}: the "
                        "kernel sweeps contact columns with while-loops and "
                        "chunked NumPy scans, never element-wise for loops",
                    )


# ---------------------------------------------------------------------------
# SPEC001 — spec/config JSON round-trip completeness


class SpecRoundTripRule(Rule):
    """A knob that is not serialised is a knob the sweep silently drops.

    PR 3 and PR 5 both grew ``SimulationConfig`` knobs that initially
    missed the ScenarioSpec JSON round-trip ("added but not serialized"):
    a scenario file pinning the knob would parse, run, and quietly use
    the default. This rule checks, per serialisable dataclass, that every
    field name appears as a string literal in both ``to_dict`` and
    ``from_dict``; and cross-file, that every ``SimulationConfig`` field
    is mirrored as a ``ScenarioSpec`` field.
    """

    rule_id = "SPEC001"
    severity = SEVERITY_ERROR
    description = (
        "spec/config dataclass field missing from its JSON round-trip "
        "(to_dict/from_dict) or not mirrored by ScenarioSpec"
    )
    paths = ("src/repro/core/simulation.py", "src/repro/scenarios/spec.py")

    #: config class -> the spec class that must mirror its fields
    _MIRRORS = {"SimulationConfig": "ScenarioSpec"}

    def __init__(self) -> None:
        #: class name -> (path, line, field names) for cross-file checks
        self._classes: dict[str, tuple[str, int, list[str]]] = {}

    def check(self, src: SourceFile) -> Iterator[Violation]:
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not any(_decorator_name(d) == "dataclass" for d in node.decorator_list):
                continue
            fields = self._dataclass_fields(node)
            if not fields:
                continue
            self._classes[node.name] = (src.rel_path, node.lineno, fields)
            methods = {
                stmt.name: stmt
                for stmt in node.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            to_dict = methods.get("to_dict")
            from_dict = methods.get("from_dict")
            if to_dict is None or from_dict is None:
                continue
            for label, method in (("to_dict", to_dict), ("from_dict", from_dict)):
                keys = self._string_constants(method)
                for field in fields:
                    if field not in keys:
                        yield self.violation(
                            src,
                            method,
                            f"{node.name}.{field} does not appear in "
                            f"{label}(): the knob would silently vanish "
                            "from scenario JSON round-trips",
                        )

    def finish(self) -> Iterable[Violation]:
        out: list[Violation] = []
        for config_name, spec_name in self._MIRRORS.items():
            config = self._classes.get(config_name)
            spec = self._classes.get(spec_name)
            if config is None or spec is None:
                continue
            path, line, config_fields = config
            spec_fields = set(spec[2])
            for field in config_fields:
                if field not in spec_fields:
                    out.append(
                        Violation(
                            rule_id=self.rule_id,
                            path=path,
                            line=line,
                            col=1,
                            message=(
                                f"{config_name}.{field} has no mirroring "
                                f"{spec_name} field: scenario files cannot "
                                "set it (the PR 3/PR 5 'knob added but not "
                                "serialized' bug class)"
                            ),
                            severity=self.severity,
                        )
                    )
        return out

    @staticmethod
    def _dataclass_fields(node: ast.ClassDef) -> list[str]:
        fields: list[str] = []
        for stmt in node.body:
            if not (isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name)):
                continue
            name = stmt.target.id
            if name.startswith("_"):
                continue
            if _base_name(stmt.annotation) == "ClassVar":
                continue
            fields.append(name)
        return fields

    @staticmethod
    def _string_constants(node: ast.AST) -> set[str]:
        return {
            n.value
            for n in ast.walk(node)
            if isinstance(n, ast.Constant) and isinstance(n.value, str)
        }


# ---------------------------------------------------------------------------
# API001 — registry-facing API docstrings


class RegistryDocstringRule(Rule):
    """Registry entries are the public extension surface — document them.

    Anything reachable through the protocol / drop-policy / mobility /
    experiment registries is an advertised extension point; a registry
    entry without a docstring is invisible to ``repro list`` style
    introspection and to downstream users.
    """

    rule_id = "API001"
    severity = SEVERITY_WARNING
    description = (
        "public class/function in a registry-facing module lacks a docstring"
    )
    paths = (
        "src/repro/core/protocols/*",
        "src/repro/core/policies.py",
        "src/repro/experiments/*",
        "src/repro/scenarios/*",
    )

    def check(self, src: SourceFile) -> Iterator[Violation]:
        for stmt in src.tree.body:
            if not isinstance(stmt, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if stmt.name.startswith("_"):
                continue
            if ast.get_docstring(stmt) is None:
                kind = "class" if isinstance(stmt, ast.ClassDef) else "function"
                yield self.violation(
                    src,
                    stmt,
                    f"public {kind} {stmt.name} in a registry-facing module "
                    "has no docstring (it is part of the extension surface)",
                )


# ---------------------------------------------------------------------------


def default_rules() -> list[Rule]:
    """The full reprolint rule set, in report order."""
    return [
        UnseededRandomRule(),
        UnorderedIterationRule(),
        WallClockRule(),
        SlotsRule(),
        ScheduleClosureRule(),
        KernelContactLoopRule(),
        SpecRoundTripRule(),
        RegistryDocstringRule(),
    ]
