"""``reprolint`` — project static analyzer for determinism & hot-path rules.

Run as ``python -m tools.lintkit [paths...]`` or via ``repro lint``.
See :mod:`tools.lintkit.rules` for the rule inventory and
:mod:`tools.lintkit.engine` for the engine.
"""

from __future__ import annotations

from tools.lintkit.engine import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Rule,
    SourceFile,
    Violation,
    lint_paths,
    lint_sources,
    run_cli,
)
from tools.lintkit.rules import default_rules

__all__ = [
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "Rule",
    "SourceFile",
    "Violation",
    "default_rules",
    "lint_paths",
    "lint_sources",
    "run_cli",
]
