"""Entry point: ``python -m tools.lintkit``."""

from tools.lintkit.engine import run_cli

raise SystemExit(run_cli())
