"""The ``reprolint`` rule engine.

``reprolint`` is this repo's project-specific static analyzer: an
AST-walking rule engine whose rules encode the invariants the golden-pin
methodology depends on (seeded randomness, ordered iteration on the event
path, ``__slots__`` hot-path classes, serialisation round-trips). The
engine is deliberately small:

* **One parse per file.** Every applicable rule visits the same
  :class:`SourceFile` (AST + raw lines + pragma maps).
* **Per-rule severity.** ``error`` violations fail the build;
  ``warning`` violations are reported but exit 0 unless ``--strict``.
* **Path-scoped rule sets.** Each rule declares ``paths`` / ``exclude``
  fnmatch patterns over posix-style relative paths, so an invariant can
  be enforced exactly where it holds (e.g. ordered iteration only on the
  event-scheduling modules) without a central config file.
* **Inline suppression.** ``# lint: disable=RULE[,RULE...]`` on the
  offending line suppresses those rules for that line;
  ``# lint: disable-file=RULE`` anywhere in the file suppresses the rule
  for the whole file. ``ALL`` is accepted as a wildcard. Suppressions
  are for *reviewed* sites — the pragma is grep-able on purpose.

Rules subclass :class:`Rule`, yield :class:`Violation` objects from
:meth:`Rule.check`, and may emit cross-file violations from
:meth:`Rule.finish` after every file was visited (used by SPEC001's
config-mirror check).
"""

from __future__ import annotations

import ast
import fnmatch
import json
import re
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from pathlib import Path

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

#: ``# lint: disable=DET001`` / ``# lint: disable=DET001,HOT002``
_LINE_PRAGMA = re.compile(r"#\s*lint:\s*disable=([A-Za-z0-9_,\s]+)")
#: ``# lint: disable-file=DET001`` — whole-file suppression
_FILE_PRAGMA = re.compile(r"#\s*lint:\s*disable-file=([A-Za-z0-9_,\s]+)")


@dataclass(frozen=True)
class Violation:
    """One rule finding, anchored at a source location."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    severity: str = SEVERITY_ERROR

    def render(self) -> str:
        """``path:line:col: SEVERITY RULE: message`` (editor-clickable)."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.severity} {self.rule_id}: {self.message}"
        )

    def as_dict(self) -> dict[str, object]:
        """JSON-ready rendering for ``--format json``."""
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity,
            "message": self.message,
        }


def _parse_pragma_ids(match: re.Match[str]) -> set[str]:
    return {tok.strip().upper() for tok in match.group(1).split(",") if tok.strip()}


class SourceFile:
    """One parsed source file: AST, raw lines, and suppression pragmas."""

    def __init__(self, rel_path: str, text: str) -> None:
        self.rel_path = rel_path
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=rel_path)
        #: line number -> rule ids suppressed on that line
        self.line_pragmas: dict[int, set[str]] = {}
        #: rule ids suppressed for the whole file
        self.file_pragmas: set[str] = set()
        for lineno, line in enumerate(self.lines, start=1):
            if "lint:" not in line:
                continue
            m = _FILE_PRAGMA.search(line)
            if m:
                self.file_pragmas |= _parse_pragma_ids(m)
                continue
            m = _LINE_PRAGMA.search(line)
            if m:
                self.line_pragmas[lineno] = _parse_pragma_ids(m)

    def suppressed(self, rule_id: str, line: int) -> bool:
        """True if ``rule_id`` is pragma-disabled at ``line``."""
        rid = rule_id.upper()
        if rid in self.file_pragmas or "ALL" in self.file_pragmas:
            return True
        ids = self.line_pragmas.get(line)
        return ids is not None and (rid in ids or "ALL" in ids)


class Rule:
    """Base class for reprolint rules.

    Subclasses set the class attributes and implement :meth:`check`;
    project-level rules may also override :meth:`finish` to emit
    violations after the whole file set was visited.
    """

    #: Stable identifier used in reports and pragmas (e.g. ``DET001``).
    rule_id = "RULE000"
    #: ``error`` fails the build; ``warning`` reports without failing.
    severity = SEVERITY_ERROR
    #: One-line summary shown by ``--list-rules``.
    description = ""
    #: fnmatch patterns over posix relative paths; empty = every file.
    paths: tuple[str, ...] = ()
    #: fnmatch patterns removed from scope even when ``paths`` matches.
    exclude: tuple[str, ...] = ()

    def applies_to(self, rel_path: str) -> bool:
        """True when this rule is in scope for ``rel_path``."""
        if any(fnmatch.fnmatch(rel_path, pat) for pat in self.exclude):
            return False
        if not self.paths:
            return True
        return any(fnmatch.fnmatch(rel_path, pat) for pat in self.paths)

    def check(self, src: SourceFile) -> Iterable[Violation]:
        """Yield this rule's violations for one source file."""
        raise NotImplementedError

    def finish(self) -> Iterable[Violation]:
        """Cross-file violations, emitted after every file was checked."""
        return ()

    def violation(
        self, src: SourceFile, node: ast.AST, message: str
    ) -> Violation:
        """Build a :class:`Violation` anchored at ``node``."""
        return Violation(
            rule_id=self.rule_id,
            path=src.rel_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            severity=self.severity,
        )


def iter_python_files(roots: Sequence[str | Path]) -> Iterator[Path]:
    """Yield ``*.py`` files under ``roots`` (files or directories), sorted.

    Hidden directories (``.git``, ``.pytest_cache``, ...) and
    ``__pycache__`` are skipped.
    """
    seen: set[Path] = set()
    for root in roots:
        root = Path(root)
        if root.is_file():
            candidates: Iterable[Path] = [root] if root.suffix == ".py" else []
        else:
            candidates = sorted(root.rglob("*.py"))
        for path in candidates:
            parts = path.parts
            if any(p.startswith(".") or p == "__pycache__" for p in parts):
                continue
            if path not in seen:
                seen.add(path)
                yield path


def _relative_posix(path: Path, base: Path) -> str:
    try:
        return path.resolve().relative_to(base.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def lint_sources(
    sources: Iterable[tuple[str, str]], rules: Sequence[Rule]
) -> list[Violation]:
    """Lint in-memory ``(rel_path, text)`` pairs (the unit-test entry).

    Violations are pragma-filtered and sorted by (path, line, rule).

    Raises:
        SyntaxError: if a source does not parse.
    """
    out: list[Violation] = []
    checked: list[SourceFile] = []
    for rel_path, text in sources:
        src = SourceFile(rel_path, text)
        checked.append(src)
        for rule in rules:
            if not rule.applies_to(rel_path):
                continue
            for v in rule.check(src):
                if not src.suppressed(v.rule_id, v.line):
                    out.append(v)
    by_path = {src.rel_path: src for src in checked}
    for rule in rules:
        for v in rule.finish():
            src = by_path.get(v.path)
            if src is None or not src.suppressed(v.rule_id, v.line):
                out.append(v)
    out.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    return out


def lint_paths(
    roots: Sequence[str | Path],
    rules: Sequence[Rule],
    *,
    base: Path | None = None,
) -> list[Violation]:
    """Lint every python file under ``roots`` against ``rules``.

    Paths are reported relative to ``base`` (default: the current
    directory), which is also what rule scoping patterns match against —
    run from the repo root so ``src/repro/...`` patterns line up.
    """
    base = base or Path.cwd()

    def _sources() -> Iterator[tuple[str, str]]:
        for path in iter_python_files(roots):
            yield _relative_posix(path, base), path.read_text(encoding="utf-8")

    return lint_sources(_sources(), rules)


def run_cli(argv: Sequence[str] | None = None) -> int:
    """``python -m tools.lintkit`` — returns the process exit code."""
    import argparse

    from tools.lintkit.rules import default_rules

    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=(
            "Project static analyzer: determinism & hot-path invariants "
            "behind the golden-pin methodology."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tools"],
        help="files or directories to lint (default: src tools)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", help="report format"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule set and exit"
    )
    parser.add_argument(
        "--strict", action="store_true", help="warnings also fail the build"
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="ID",
        help="run only these rule ids (repeatable)",
    )
    args = parser.parse_args(argv)

    rules: Sequence[Rule] = default_rules()
    if args.list_rules:
        for rule in rules:
            scope = ", ".join(rule.paths) if rule.paths else "all files"
            print(f"{rule.rule_id}  [{rule.severity}]  {rule.description}")
            print(f"        scope: {scope}")
        return 0
    if args.rule:
        wanted = {r.upper() for r in args.rule}
        rules = [r for r in rules if r.rule_id in wanted]
        unknown = wanted - {r.rule_id for r in rules}
        if unknown:
            parser.error(f"unknown rule id(s): {', '.join(sorted(unknown))}")

    violations = lint_paths(args.paths, rules)
    if args.format == "json":
        print(json.dumps([v.as_dict() for v in violations], indent=2))
    else:
        for v in violations:
            print(v.render())
    errors = sum(1 for v in violations if v.severity == SEVERITY_ERROR)
    warnings = len(violations) - errors
    if args.format == "text":
        if violations:
            print(f"reprolint: {errors} error(s), {warnings} warning(s)")
        else:
            print("reprolint: clean")
    failing = errors + (warnings if args.strict else 0)
    return 1 if failing else 0
