#!/usr/bin/env python3
"""Simulation-core benchmark: events/sec and cell runs/sec per protocol.

Times single sweep cells (one protocol × one population × one load, the
unit of work every experiment grid is made of) on subscriber-point RWP
traces, reports wall time, fired-event throughput, and the speedup against
the pre-optimization measurement pinned in :data:`PRE_OPT_WALL_S`, and
writes the table to a JSON report — the perf trajectory CI tracks next to
``BENCH_contacts.json``.

The grid carries a ``kernel`` dimension: every cell runs on the classic
event engine, and encounter-inert cells (:data:`SOA_PROTOCOLS`) run a
second time on the array-resident contact-sweep kernel
(:mod:`repro.core.sweepkernel`). The full scale adds a 1000-node epidemic
cell only the sweep kernel can run interactively.

Usage:
    PYTHONPATH=src python tools/bench_sim.py --scale smoke
    PYTHONPATH=src python tools/bench_sim.py --scale full --repeats 3
    PYTHONPATH=src python tools/bench_sim.py --verify
    PYTHONPATH=src python tools/bench_sim.py --scale smoke \\
        --baseline BENCH_sim.json --max-regression 0.25

``--verify`` turns the run into an equivalence gate: the golden seed
scenarios (campus trace, seed 7 — the same pins as
``tests/core/test_golden_runs.py``) are re-run and every metric must match
bit-for-bit, each benchmark cell is re-run with the slow reference
session planner and must produce an identical ``RunResult``, and every
sweep-kernel row with an event twin in the grid — plus the eligible
golden cells — must be byte-identical (``repr``) across kernels.

``--baseline`` compares fresh events/sec against a committed report and
exits non-zero on regressions beyond ``--max-regression`` (matched rows
only, so a smoke run can gate against the committed full-scale report).
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import replace

import numpy as np

try:
    from bench_common import (
        compare_to_baseline,
        format_rate,
        load_report,
        median_metric_ratio,
        report_envelope,
        write_report,
    )
except ImportError:  # loaded by file path (tests) rather than from tools/
    import sys as _sys
    from pathlib import Path as _Path

    _sys.path.insert(0, str(_Path(__file__).resolve().parent))
    from bench_common import (
        compare_to_baseline,
        format_rate,
        load_report,
        median_metric_ratio,
        report_envelope,
        write_report,
    )

from repro.core.protocols.registry import make_protocol_config
from repro.core.simulation import Simulation
from repro.core.sweep import SweepConfig
from repro.core.workload import single_flow
from repro.des.rng import derive_seed
from repro.mobility.contact import ContactTrace
from repro.mobility.rwp import RWPConfig, SubscriberPointRWP
from repro.mobility.synthetic import CampusTraceGenerator
from repro.mobility.trajectory import contacts_from_trajectories

#: Trace horizon shared by every benchmark cell, seconds.
HORIZON = 20_000.0

#: The protocol trio the benchmark grid times: flooding, TTL, anti-packets.
PROTOCOLS: dict[str, dict[str, object]] = {
    "pure": {},
    "ttl": {"ttl": 300.0},
    "pq": {"p": 1.0, "q": 1.0, "anti_packets": True},
}

#: Constructor kwargs for every golden-pinned protocol: the bench trio plus
#: the control-bearing protocols pinned only for equivalence (ec, immunity)
#: — the knowledge-subsystem refactor is equivalence-gated for each of them.
GOLDEN_PROTOCOLS: dict[str, dict[str, object]] = {
    **PROTOCOLS,
    "ec": {},
    "immunity": {},
}

#: Bench-grid protocols the sweep kernel accepts (encounter-inert). The
#: anti-packet pq cell mutates knowledge on encounters, so it stays
#: event-only — exactly the mixed-grid situation per-cell dispatch covers.
SOA_PROTOCOLS = ("pure", "ttl")

#: Golden-pinned protocols covered by the kernel byte-identity check
#: (immunity and anti-packet pq are encounter-reactive → event-only).
SOA_GOLDEN_PROTOCOLS = ("pure", "ttl", "ec")

SCALES: dict[str, dict[str, tuple]] = {
    # CI perf job: small populations, quick; the extra 200-node
    # anti-packet cell covers the per-contact control-plane path (the
    # degenerate-encounter chunking + knowledge-epoch caching) at the
    # population size where it dominates
    "smoke": {
        "nodes": (25, 50),
        "loads": (10,),
        "extra_cells": (("pq", 200, 30),),
        "soa_cells": (),
    },
    # the committed BENCH_sim.json: the full grid incl. the 100-node
    # epidemic cell the optimization target is measured on (the smoke
    # extra cell is part of the grid here); the 1000-node epidemic cell
    # runs on the sweep kernel only — the event engine needs tens of
    # seconds for it while the kernel stays interactive
    "full": {
        "nodes": (25, 50, 100, 200),
        "loads": (10, 30),
        "extra_cells": (),
        "soa_cells": (("pure", 1000, 30),),
    },
}

#: The tentpole's reference cell: a 100-node epidemic sweep cell.
TARGET_CELL = ("pure", 100, 30)

#: Pre-optimization wall times (seconds, best of 2–3) for every full-scale
#: cell, measured at commit 3367023 (before the incremental planner /
#: allocation-free event scheduling work) with seed 7 on the dev machine.
#: ``speedup_vs_pre_opt`` in the report is measured against these.
PRE_OPT_WALL_S: dict[tuple[str, int, int], float] = {
    ("pure", 25, 10): 0.0045,
    ("pure", 25, 30): 0.0065,
    ("ttl", 25, 10): 0.0046,
    ("ttl", 25, 30): 0.0057,
    ("pq", 25, 10): 0.0057,
    ("pq", 25, 30): 0.0078,
    ("pure", 50, 10): 0.0254,
    ("pure", 50, 30): 0.0283,
    ("ttl", 50, 10): 0.0193,
    ("ttl", 50, 30): 0.0194,
    ("pq", 50, 10): 0.0269,
    ("pq", 50, 30): 0.0259,
    ("pure", 100, 10): 0.1075,
    ("pure", 100, 30): 0.1108,
    ("ttl", 100, 10): 0.0694,
    ("ttl", 100, 30): 0.0727,
    ("pq", 100, 10): 0.0862,
    ("pq", 100, 30): 0.1140,
    ("pure", 200, 10): 0.3973,
    ("pure", 200, 30): 0.5475,
    ("ttl", 200, 10): 0.3754,
    ("ttl", 200, 30): 0.4146,
    ("pq", 200, 10): 0.4436,
    ("pq", 200, 30): 0.5483,
}

#: Golden seed-scenario pins (campus trace, seed 7, reject policy) — the
#: single source of truth: tests/core/test_golden_runs.py imports this
#: table, and ``--verify`` re-checks it in the CI equivalence job. See that
#: test's docstring for how to regenerate after an intentional semantic
#: change.
GOLDEN: dict[tuple[str, int, int], dict[str, float | int]] = {
    ("pure", 10, 0): dict(
        delivered=10,
        delay=9504.79563371244,
        transmissions=41,
        buffer_occupancy=0.09645330709440073,
        peak_occupancy=0.25833333333333336,
        duplication_rate=0.0946318698294398,
        end_time=9504.79563371244,
    ),
    ("pure", 30, 1): dict(
        delivered=30,
        delay=200638.0333761878,
        transmissions=130,
        buffer_occupancy=0.7822151639604117,
        peak_occupancy=0.8333333333333334,
        duplication_rate=0.11646657918739857,
        end_time=200638.0333761878,
    ),
    ("ttl", 10, 0): dict(
        delivered=10,
        delay=21239.336647955755,
        transmissions=39,
        buffer_occupancy=0.003667423638634794,
        peak_occupancy=0.03333333333333333,
        duplication_rate=0.08630447725195987,
        end_time=21239.336647955755,
    ),
    ("ttl", 30, 1): dict(
        delivered=30,
        delay=217142.23887968616,
        transmissions=510,
        buffer_occupancy=0.005895168217461815,
        peak_occupancy=0.09166666666666666,
        duplication_rate=0.08543936932736591,
        end_time=217142.23887968616,
    ),
    ("pq", 10, 0): dict(
        delivered=10,
        delay=9504.79563371244,
        transmissions=30,
        buffer_occupancy=0.04834130565739798,
        peak_occupancy=0.12083333333333335,
        duplication_rate=0.09587998441010431,
        end_time=9504.79563371244,
    ),
    ("pq", 30, 1): dict(
        delivered=30,
        delay=46062.10360502355,
        transmissions=232,
        buffer_occupancy=0.22723092182253896,
        peak_occupancy=0.5283333333333337,
        duplication_rate=0.13439470267943393,
        end_time=46062.10360502355,
    ),
    ("ec", 10, 0): dict(
        delivered=10,
        delay=9504.79563371244,
        transmissions=41,
        buffer_occupancy=0.09645330709440073,
        peak_occupancy=0.25833333333333336,
        duplication_rate=0.0946318698294398,
        end_time=9504.79563371244,
    ),
    ("ec", 30, 1): dict(
        delivered=30,
        delay=185445.126472493,
        transmissions=828,
        buffer_occupancy=0.7763815722510435,
        peak_occupancy=0.8333333333333334,
        duplication_rate=0.11677667946375138,
        end_time=185445.126472493,
        # EC's intrinsic eviction rule fires under load-30 pressure —
        # pinned so the refactored buffer path stays accounting-identical
        drops={"max-ec": 698},
    ),
    ("immunity", 10, 0): dict(
        delivered=10,
        delay=9504.79563371244,
        transmissions=30,
        buffer_occupancy=0.04834130565739798,
        peak_occupancy=0.12083333333333335,
        duplication_rate=0.09587998441010431,
        end_time=9504.79563371244,
    ),
    ("immunity", 30, 1): dict(
        delivered=30,
        delay=46062.10360502355,
        transmissions=232,
        buffer_occupancy=0.22723092182253896,
        peak_occupancy=0.5283333333333337,
        duplication_rate=0.13439470267943393,
        end_time=46062.10360502355,
    ),
}

#: Every pin's drop table defaults to empty (reject policy, no evictions);
#: cells whose protocol evicts intrinsically pin the exact counts above.
for _expected in GOLDEN.values():
    _expected.setdefault("drops", {})

GOLDEN_FIELDS = (
    "delivered",
    "delay",
    "transmissions",
    "buffer_occupancy",
    "peak_occupancy",
    "duplication_rate",
    "end_time",
    "drops",
)


def build_trace(num_nodes: int, seed: int) -> ContactTrace:
    """Subscriber-point RWP trace for one benchmark population."""
    cfg = RWPConfig(num_nodes=num_nodes, horizon=HORIZON)
    trajectories = SubscriberPointRWP(cfg, seed=seed).generate_trajectories()
    return contacts_from_trajectories(
        trajectories,
        cfg.comm_range,
        contact_cap=cfg.contact_cap,
        horizon=cfg.horizon,
    )


def build_sim(
    trace: ContactTrace,
    protocol_name: str,
    load: int,
    master_seed: int,
    *,
    rep: int = 0,
    planner: str = "incremental",
    kernel: str = "event",
) -> Simulation:
    """One sweep cell's simulation, seeded exactly like ``run_single``."""
    protocol = make_protocol_config(protocol_name, **GOLDEN_PROTOCOLS[protocol_name])
    endpoint_rng = np.random.default_rng(
        derive_seed(master_seed, "workload", load, rep)
    )
    flows = single_flow(trace.num_nodes, load, endpoint_rng)
    run_seed = int(
        derive_seed(
            master_seed, "run", protocol.protocol_name, load, rep
        ).generate_state(1)[0]
    )
    return Simulation(
        trace,
        protocol,
        flows,
        config=replace(SweepConfig().sim, kernel=kernel),
        seed=run_seed,
        planner=planner,
    )


def bench_cell(
    trace: ContactTrace,
    protocol_name: str,
    load: int,
    master_seed: int,
    repeats: int,
    kernel: str = "event",
) -> dict[str, object]:
    """Best-of-``repeats`` wall time for one (protocol, nodes, load) cell.

    ``events`` counts simulation work, not raw heap traffic:
    ``engine.events_fired`` plus the degenerate encounters the trace-layer
    batching processed without an event round-trip. The sum equals the
    event count of the unbatched reference schedule exactly, so
    ``events_per_s`` stays comparable across baselines that predate the
    batching (the raw split is reported alongside).
    """
    best = float("inf")
    events = fired = batched = 0
    for _ in range(repeats):
        sim = build_sim(trace, protocol_name, load, master_seed, kernel=kernel)
        t0 = time.perf_counter()
        sim.run()
        best = min(best, time.perf_counter() - t0)
        fired = sim.engine.events_fired
        batched = sim.batched_encounters
        events = fired + batched
    pre_opt = PRE_OPT_WALL_S.get((protocol_name, trace.num_nodes, load))
    return {
        "protocol": protocol_name,
        "nodes": trace.num_nodes,
        "load": load,
        "kernel": kernel,
        "contacts": len(trace),
        "events": events,
        "events_fired": fired,
        "batched_encounters": batched,
        "wall_s": round(best, 5),
        "events_per_s": round(events / best, 1) if best > 0 else None,
        "cells_per_s": round(1.0 / best, 2) if best > 0 else None,
        "pre_opt_wall_s": pre_opt,
        "speedup_vs_pre_opt": round(pre_opt / best, 2)
        if pre_opt is not None and best > 0
        else None,
    }


#: The seed the GOLDEN pins were measured at. verify_golden always uses
#: it — the pins are meaningless under any other seed, so ``--seed`` only
#: affects the benchmark cells and the planner-parity check.
GOLDEN_SEED = 7


def verify_golden() -> list[str]:
    """Re-run the golden seed scenarios; return mismatch messages."""
    trace = CampusTraceGenerator(seed=GOLDEN_SEED).generate()
    failures: list[str] = []
    for (name, load, rep), expected in sorted(GOLDEN.items()):
        result = build_sim(trace, name, load, GOLDEN_SEED, rep=rep).run()
        for fld in GOLDEN_FIELDS:
            got = getattr(result, fld)
            if got != expected[fld]:
                failures.append(
                    f"golden {name} load={load} rep={rep}: {fld} "
                    f"{got!r} != pinned {expected[fld]!r}"
                )
    return failures


def verify_planner(
    trace: ContactTrace, protocol_name: str, load: int, master_seed: int
) -> list[str]:
    """Incremental vs reference planner on one cell; return mismatches."""
    fast = build_sim(trace, protocol_name, load, master_seed).run()
    slow = build_sim(
        trace, protocol_name, load, master_seed, planner="reference"
    ).run()
    if fast != slow:
        return [
            f"planner divergence: {protocol_name} n={trace.num_nodes} "
            f"load={load}: incremental {fast!r} != reference {slow!r}"
        ]
    return []


def verify_kernel(
    trace: ContactTrace, protocol_name: str, load: int, master_seed: int
) -> list[str]:
    """Sweep kernel vs event engine on one cell; reprs must be identical."""
    event = build_sim(trace, protocol_name, load, master_seed).run()
    soa = build_sim(trace, protocol_name, load, master_seed, kernel="soa").run()
    if repr(event) != repr(soa):
        return [
            f"kernel divergence: {protocol_name} n={trace.num_nodes} "
            f"load={load}: soa {soa!r} != event {event!r}"
        ]
    return []


def verify_golden_kernel() -> list[str]:
    """Kernel byte-identity across the eligible extended golden grid."""
    trace = CampusTraceGenerator(seed=GOLDEN_SEED).generate()
    failures: list[str] = []
    for name, load, rep in sorted(GOLDEN):
        if name not in SOA_GOLDEN_PROTOCOLS:
            continue
        event = build_sim(trace, name, load, GOLDEN_SEED, rep=rep).run()
        soa = build_sim(
            trace, name, load, GOLDEN_SEED, rep=rep, kernel="soa"
        ).run()
        if repr(event) != repr(soa):
            failures.append(
                f"kernel divergence: golden {name} load={load} rep={rep}: "
                f"soa {soa!r} != event {event!r}"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=sorted(SCALES), default="smoke")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--repeats", type=int, default=1, help="best-of-N timing per cell"
    )
    parser.add_argument("--out", default="BENCH_sim.json", help="JSON report path")
    parser.add_argument(
        "--verify",
        action="store_true",
        help="equivalence gate: golden seed-scenario pins must match "
        "bit-for-bit, the incremental planner must equal the reference "
        "planner on every benchmark cell, and every sweep-kernel row "
        "must be byte-identical to its event-engine twin",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="committed BENCH_sim.json to gate events/sec against",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="tolerated fractional events/sec drop vs --baseline (default 0.25)",
    )
    args = parser.parse_args(argv)

    scale = SCALES[args.scale]
    print(
        f"simulation benchmark: scale={args.scale} seed={args.seed} "
        f"repeats={args.repeats} horizon={HORIZON:.0f}s "
        f"nodes={list(scale['nodes'])} loads={list(scale['loads'])}"
    )

    failures: list[str] = []
    if args.verify:
        failures.extend(verify_golden())
        status = "ok" if not failures else "FAILED"
        print(f"golden seed-scenario pins ({len(GOLDEN)} runs, seed {GOLDEN_SEED}): {status}")
        kernel_failures = verify_golden_kernel()
        failures.extend(kernel_failures)
        status = "ok" if not kernel_failures else "FAILED"
        print(
            f"golden kernel byte-identity ({len(SOA_GOLDEN_PROTOCOLS)} "
            f"protocols, seed {GOLDEN_SEED}): {status}"
        )

    base_cells: list[tuple[str, int, int]] = [
        (protocol_name, n, load)
        for n in scale["nodes"]
        for protocol_name in PROTOCOLS
        for load in scale["loads"]
    ]
    base_cells += [cell for cell in scale["extra_cells"] if cell not in base_cells]
    cells: list[tuple[str, int, int, str]] = []
    for protocol_name, n, load in base_cells:
        cells.append((protocol_name, n, load, "event"))
        if protocol_name in SOA_PROTOCOLS:
            cells.append((protocol_name, n, load, "soa"))
    # kernel-only cells: no event twin, so no equivalence re-run either
    cells += [(p, n, load, "soa") for p, n, load in scale["soa_cells"]]

    rows: list[dict[str, object]] = []
    traces: dict[int, ContactTrace] = {}
    for protocol_name, n, load, kernel in cells:
        if n not in traces:
            traces[n] = build_trace(n, args.seed)
        trace = traces[n]
        row = bench_cell(
            trace, protocol_name, load, args.seed, args.repeats, kernel=kernel
        )
        rows.append(row)
        if args.verify and kernel == "event":
            failures.extend(verify_planner(trace, protocol_name, load, args.seed))
        elif args.verify and (protocol_name, n, load, "event") in cells:
            failures.extend(verify_kernel(trace, protocol_name, load, args.seed))
        speedup = row["speedup_vs_pre_opt"]
        speedup_txt = f"×{speedup:.2f}" if speedup is not None else "—"
        print(
            f"  {protocol_name:5s} n={n:<4d} load={load:<3d} {kernel:5s} "
            f"{row['wall_s']:9.4f}s  events={row['events']:>8}  "
            f"{format_rate(row['events_per_s']):>7} ev/s  "
            f"vs pre-opt {speedup_txt:>7}"
        )

    def _target_row(kernel: str) -> dict[str, object] | None:
        key = (*TARGET_CELL, kernel)
        return next(
            (
                r
                for r in rows
                if (r["protocol"], r["nodes"], r["load"], r["kernel"]) == key
            ),
            None,
        )

    target = _target_row("event")
    target_soa = _target_row("soa")
    report = report_envelope(
        "simulation_core",
        scale=args.scale,
        seed=args.seed,
        repeats=args.repeats,
        horizon_s=HORIZON,
        mobility="rwp-subscriber",
        target_cell={
            "protocol": TARGET_CELL[0],
            "nodes": TARGET_CELL[1],
            "load": TARGET_CELL[2],
            "pre_opt_wall_s": PRE_OPT_WALL_S[TARGET_CELL],
            "wall_s": target["wall_s"] if target else None,
            "speedup_vs_pre_opt": target["speedup_vs_pre_opt"] if target else None,
            "soa_wall_s": target_soa["wall_s"] if target_soa else None,
            "soa_events_per_s": target_soa["events_per_s"] if target_soa else None,
            "soa_speedup_vs_event": round(target["wall_s"] / target_soa["wall_s"], 2)
            if target and target_soa and target_soa["wall_s"]
            else None,
        },
        results=rows,
    )
    write_report(args.out, report)
    print(f"report written to {args.out}")
    if target is not None:
        print(
            f"target cell (100-node epidemic sweep cell): "
            f"{target['wall_s']}s, ×{target['speedup_vs_pre_opt']} vs pre-opt"
        )
    if target is not None and target_soa is not None and target_soa["wall_s"]:
        print(
            f"target cell on sweep kernel: {target_soa['wall_s']}s, "
            f"×{target['wall_s'] / target_soa['wall_s']:.2f} vs event kernel"
        )

    if args.baseline:
        baseline = load_report(args.baseline)
        # .get() default keeps pre-kernel baselines comparable: their rows
        # were all event-engine runs
        cell_key = lambda r: (  # noqa: E731
            r["protocol"],
            r["nodes"],
            r["load"],
            r.get("kernel", "event"),
        )
        regressions = compare_to_baseline(
            rows,
            baseline.get("results", []),
            key=cell_key,
            metric="events_per_s",
            max_regression=args.max_regression,
        )
        if regressions:
            for msg in regressions:
                print(f"REGRESSION: {msg}", file=sys.stderr)
            return 1
        speed = median_metric_ratio(
            rows, baseline.get("results", []), key=cell_key, metric="events_per_s"
        )
        print(
            f"baseline check vs {args.baseline}: all matched cells within "
            f"{args.max_regression:.0%} (machine-speed factor ×{speed:.2f}) ✓"
        )
        if speed is not None and speed < 1.0 - args.max_regression:
            # The relative gate cancels a uniform slowdown by design; make
            # it loudly visible so a human can judge hardware-vs-regression.
            print(
                f"WARNING: every matched cell runs at ×{speed:.2f} of the "
                "committed baseline — a slower machine, or a uniform "
                "simulation-core regression the relative gate cannot "
                "distinguish. Compare the uploaded reports if this "
                "machine should match the baseline host.",
                file=sys.stderr,
            )

    if failures:
        for msg in failures:
            print(f"ERROR: {msg}", file=sys.stderr)
        return 1
    if args.verify:
        print("equivalence check: golden pins + planner parity + kernel identity ✓")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
