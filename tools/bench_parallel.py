#!/usr/bin/env python3
"""Smoke benchmark: serial vs parallel sweep execution.

Runs one of the built-in sweep families at a chosen scale with the
``SerialExecutor`` and then with a ``ParallelExecutor``, reports wall-clock
times and the speedup, and verifies the two backends produced bit-identical
results (exits non-zero if not — this doubles as a determinism check in CI).

Usage:
    PYTHONPATH=src python tools/bench_parallel.py --scale smoke --jobs 4
    PYTHONPATH=src python tools/bench_parallel.py --family enhanced_rwp --scale quick
    PYTHONPATH=src python tools/bench_parallel.py --out BENCH_parallel.json
"""

from __future__ import annotations

import argparse
import sys
import time

try:
    from bench_common import report_envelope, write_report
except ImportError:  # loaded by file path (tests) rather than from tools/
    import sys as _sys
    from pathlib import Path as _Path

    _sys.path.insert(0, str(_Path(__file__).resolve().parent))
    from bench_common import report_envelope, write_report

from repro.core.executors import ParallelExecutor, SerialExecutor
from repro.core.sweep import run_sweep
from repro.experiments.runner import SCALES, SWEEP_FAMILIES, ExperimentRunner


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--family", choices=sorted(SWEEP_FAMILIES), default="baselines_trace"
    )
    parser.add_argument("--scale", choices=sorted(SCALES), default="smoke")
    parser.add_argument("--jobs", type=int, default=2, help="parallel worker count")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--out", default=None, help="optional JSON report path (e.g. BENCH_parallel.json)"
    )
    args = parser.parse_args(argv)

    runner = ExperimentRunner(scale=args.scale, seed=args.seed)
    spec = runner.scenario(args.family)
    mobility_kind, _ = SWEEP_FAMILIES[args.family]
    trace = runner.trace(mobility_kind)  # built once, outside the timings
    protocols = spec.build_protocols()
    sweep = spec.sweep_config()
    cells = len(protocols) * len(sweep.loads) * sweep.replications
    print(
        f"family={args.family} scale={args.scale} seed={args.seed}: "
        f"{cells} cells ({len(protocols)} protocols × {len(sweep.loads)} loads "
        f"× {sweep.replications} reps)"
    )

    t0 = time.perf_counter()
    serial = run_sweep(trace, protocols, sweep, executor=SerialExecutor())
    t_serial = time.perf_counter() - t0
    print(f"serial            : {t_serial:8.2f}s")

    t0 = time.perf_counter()
    parallel = run_sweep(trace, protocols, sweep, executor=ParallelExecutor(args.jobs))
    t_parallel = time.perf_counter() - t0
    speedup = t_serial / t_parallel if t_parallel > 0 else float("inf")
    print(f"parallel (jobs={args.jobs}): {t_parallel:8.2f}s   speedup ×{speedup:.2f}")

    if args.out:
        report = report_envelope(
            "parallel_sweep",
            family=args.family,
            scale=args.scale,
            seed=args.seed,
            jobs=args.jobs,
            results=[
                {
                    "cells": cells,
                    "serial_s": round(t_serial, 4),
                    "parallel_s": round(t_parallel, 4),
                    "speedup": round(speedup, 2),
                    "cells_per_s_parallel": round(cells / t_parallel, 2)
                    if t_parallel > 0
                    else None,
                }
            ],
        )
        write_report(args.out, report)
        print(f"report written to {args.out}")

    if serial.runs != parallel.runs:
        print("ERROR: parallel results differ from serial run", file=sys.stderr)
        return 1
    print("determinism check : parallel results bit-identical to serial ✓")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
