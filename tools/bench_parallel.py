#!/usr/bin/env python3
"""Smoke benchmark: serial vs parallel sweep execution.

Runs one of the built-in sweep families at a chosen scale with the
``SerialExecutor`` and then with a ``ParallelExecutor``, reports wall-clock
times and the speedup, and verifies the two backends produced bit-identical
results (exits non-zero if not — this doubles as a determinism check in CI).

Usage:
    PYTHONPATH=src python tools/bench_parallel.py --scale smoke --jobs 4
    PYTHONPATH=src python tools/bench_parallel.py --family enhanced_rwp --scale quick
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.core.executors import ParallelExecutor, SerialExecutor
from repro.core.sweep import run_sweep
from repro.experiments.runner import SCALES, SWEEP_FAMILIES, ExperimentRunner


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--family", choices=sorted(SWEEP_FAMILIES), default="baselines_trace"
    )
    parser.add_argument("--scale", choices=sorted(SCALES), default="smoke")
    parser.add_argument("--jobs", type=int, default=2, help="parallel worker count")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    runner = ExperimentRunner(scale=args.scale, seed=args.seed)
    spec = runner.scenario(args.family)
    mobility_kind, _ = SWEEP_FAMILIES[args.family]
    trace = runner.trace(mobility_kind)  # built once, outside the timings
    protocols = spec.build_protocols()
    sweep = spec.sweep_config()
    cells = len(protocols) * len(sweep.loads) * sweep.replications
    print(
        f"family={args.family} scale={args.scale} seed={args.seed}: "
        f"{cells} cells ({len(protocols)} protocols × {len(sweep.loads)} loads "
        f"× {sweep.replications} reps)"
    )

    t0 = time.perf_counter()
    serial = run_sweep(trace, protocols, sweep, executor=SerialExecutor())
    t_serial = time.perf_counter() - t0
    print(f"serial            : {t_serial:8.2f}s")

    t0 = time.perf_counter()
    parallel = run_sweep(trace, protocols, sweep, executor=ParallelExecutor(args.jobs))
    t_parallel = time.perf_counter() - t0
    speedup = t_serial / t_parallel if t_parallel > 0 else float("inf")
    print(f"parallel (jobs={args.jobs}): {t_parallel:8.2f}s   speedup ×{speedup:.2f}")

    if serial.runs != parallel.runs:
        print("ERROR: parallel results differ from serial run", file=sys.stderr)
        return 1
    print("determinism check : parallel results bit-identical to serial ✓")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
