#!/usr/bin/env python3
"""Generate ``docs/protocols.md`` from the protocol registry.

The protocol reference is rendered from the single source of truth — the
registered configuration classes, their docstrings and their dataclass
fields — so it cannot drift from the code. CI regenerates it in check
mode and fails when the committed file is stale.

Usage:
    PYTHONPATH=src python tools/gen_protocol_docs.py            # rewrite
    PYTHONPATH=src python tools/gen_protocol_docs.py --check    # verify
    PYTHONPATH=src python -m repro docs protocols [--check]     # same
"""

from __future__ import annotations

import argparse
import dataclasses
import inspect
from pathlib import Path

from repro.core.protocols.registry import iter_registry

#: Default output location, relative to the repository root.
DEFAULT_OUT = Path(__file__).resolve().parent.parent / "docs" / "protocols.md"

_HEADER = """\
# Protocol reference

<!-- GENERATED FILE — do not edit by hand.
     Regenerate with: PYTHONPATH=src python -m repro docs protocols
     (CI fails when this file is stale; see the docs job.) -->

Every protocol the simulator knows, rendered from the registry
(`repro.core.protocols.registry.iter_registry()`). Each section is one
registered configuration class: its registry name (what scenario files
and `make_protocol_config` use), its construction parameters, and its
behaviour as documented on the class itself.

Protocols marked *surrogate-supported* also run on the analytic engine
(`engine="ode"`); see `docs/architecture.md` for the hybrid-fidelity
backend.
"""

#: Registry names the analytic surrogate models (kept in sync by test).
SURROGATE_SUPPORTED = ("pure", "pq")


def _default_repr(field: dataclasses.Field) -> str:  # type: ignore[type-arg]
    if field.default is not dataclasses.MISSING:
        return f"`{field.default!r}`"
    if field.default_factory is not dataclasses.MISSING:  # type: ignore[misc]
        return f"`{field.default_factory()!r}`"
    return "required"


def _type_repr(field: dataclasses.Field) -> str:  # type: ignore[type-arg]
    t = field.type
    text = t if isinstance(t, str) else getattr(t, "__name__", str(t))
    return f"`{text}`"


def render_protocol_docs() -> str:
    """The full markdown document, deterministically ordered by name."""
    parts = [_HEADER]
    for name, cls in iter_registry():
        title = f"## `{name}` — {cls.__name__}"
        if name in SURROGATE_SUPPORTED:
            title += " *(surrogate-supported)*"
        parts.append(title + "\n")
        doc = inspect.cleandoc(cls.__doc__ or "Undocumented.")
        parts.append(doc + "\n")
        if dataclasses.is_dataclass(cls):
            rows = [
                f"| `{f.name}` | {_type_repr(f)} | {_default_repr(f)} |"
                for f in dataclasses.fields(cls)
                if f.init
            ]
            if rows:
                parts.append(
                    "\n".join(
                        ["| parameter | type | default |", "| --- | --- | --- |"]
                        + rows
                    )
                    + "\n"
                )
    return "\n".join(parts)


def run_cli(argv: list[str] | None = None) -> int:
    """CLI body shared by direct invocation and ``repro docs protocols``."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="verify the committed file matches the registry (exit 1 if stale)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help=f"output path (default: {DEFAULT_OUT})",
    )
    args = parser.parse_args(argv)
    out = Path(args.out) if args.out is not None else DEFAULT_OUT
    rendered = render_protocol_docs()
    if args.check:
        current = out.read_text(encoding="utf-8") if out.exists() else None
        if current != rendered:
            print(
                f"{out} is stale — regenerate with "
                "`PYTHONPATH=src python -m repro docs protocols`"
            )
            return 1
        print(f"{out} is up to date")
        return 0
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(rendered, encoding="utf-8")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(run_cli())
