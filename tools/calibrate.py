#!/usr/bin/env python3
"""Calibration harness for the mobility substrates.

Sweeps candidate generator configurations and prints, per config, the trace
statistics and the protocol-separation indicators the paper's figures rely
on (see DESIGN.md §5 "expected shape results"). Used during development to
pick the defaults in ``repro.mobility.synthetic`` / ``repro.mobility.rwp``;
kept in-tree so the calibration is reproducible.

Usage: python tools/calibrate.py [campus|rwp]
"""

from __future__ import annotations

import sys
import time

from repro import (
    CampusTraceConfig,
    CampusTraceGenerator,
    RWPConfig,
    SubscriberPointRWP,
    SweepConfig,
    compute_trace_stats,
    make_protocol_config,
    run_sweep,
)

PROTOS = [
    make_protocol_config("pq", p=1.0, q=1.0),
    make_protocol_config("ttl", ttl=300.0),
    make_protocol_config("ec"),
    make_protocol_config("immunity"),
    make_protocol_config("dynamic_ttl"),
    make_protocol_config("ec_ttl"),
    make_protocol_config("cumulative_immunity"),
]


def evaluate(tag: str, trace) -> None:  # type: ignore[no-untyped-def]
    st = compute_trace_stats(trace)
    print(
        f"--- {tag}: contacts={st.num_contacts} node-gap-med={st.intercontact_node.median:.0f}"
        f" pair-gap-med={st.intercontact_pair.median:.0f} dur-med={st.durations.median:.0f}"
    )
    t0 = time.time()
    res = run_sweep(
        trace, PROTOS, SweepConfig(loads=(5, 30, 50), replications=6, master_seed=7)
    )
    delay = {s.label: s for s in res.delay_series()}
    buf = {s.label: s for s in res.buffer_occupancy_series()}
    dup = {s.label: s for s in res.duplication_series()}
    for s in res.delivery_ratio_series():
        print(
            "  %-36s dr=%s delay=%s buf=%s dup=%s"
            % (
                s.label,
                ["%.2f" % v for v in s.values],
                ["%7.0f" % v for v in delay[s.label].values],
                ["%.2f" % v for v in buf[s.label].values],
                ["%.2f" % v for v in dup[s.label].values],
            )
        )
    print("  (%.1fs)" % (time.time() - t0))


def campus() -> None:
    for mean_ic, sigma, het, dmed in [
        (24_000, 1.0, 0.2, 100.0),
        (24_000, 1.0, 0.2, 90.0),
        (18_000, 1.0, 0.2, 80.0),
    ]:
        cfg = CampusTraceConfig(
            mean_intercontact=mean_ic,
            intercontact_sigma=sigma,
            heterogeneity_sigma=het,
            duration_median=dmed,
            duration_sigma=0.9,
            max_duration=2_000.0,
            min_duration=20.0,
        )
        trace = CampusTraceGenerator(cfg, seed=7).generate()
        evaluate(f"campus ic={mean_ic} s={sigma} het={het} dmed={dmed}", trace)


def rwp() -> None:
    for comm, pts, travel in [
        (40.0, 80, 900.0),
        (30.0, 80, 900.0),
        (40.0, 60, 1_200.0),
    ]:
        cfg = RWPConfig(
            comm_range=comm, num_subscriber_points=pts, max_travel_time=travel
        )
        trace = SubscriberPointRWP(cfg, seed=7).generate()
        evaluate(f"rwp range={comm} pts={pts} travel={travel}", trace)


if __name__ == "__main__":
    which = sys.argv[1] if len(sys.argv) > 1 else "campus"
    {"campus": campus, "rwp": rwp}[which]()
