#!/usr/bin/env python3
"""Calibration harness for the mobility substrates.

Sweeps candidate generator configurations and reports, per config, the
trace statistics and the protocol-separation indicators the paper's figures
rely on (see DESIGN.md §5 "expected shape results"). Used during
development to pick the defaults in ``repro.mobility.synthetic`` /
``repro.mobility.rwp``; kept in-tree so the calibration is reproducible.

Emits the shared ``tools/bench_common.py`` report envelope — one result row
per (config, protocol, load) — like every other bench tool, so calibration
sweeps can be diffed, archived, and post-processed with the same plumbing.

Usage:
    PYTHONPATH=src python tools/calibrate.py campus
    PYTHONPATH=src python tools/calibrate.py rwp --out CALIBRATION_rwp.json
"""

from __future__ import annotations

import argparse
import time

try:
    from bench_common import report_envelope, summary_table, write_report
except ImportError:  # loaded by file path (tests) rather than from tools/
    import sys as _sys
    from pathlib import Path as _Path

    _sys.path.insert(0, str(_Path(__file__).resolve().parent))
    from bench_common import report_envelope, summary_table, write_report

from repro import (
    CampusTraceConfig,
    CampusTraceGenerator,
    RWPConfig,
    SimulationConfig,
    SubscriberPointRWP,
    SweepConfig,
    SweepResult,
    compute_trace_stats,
    make_protocol_config,
    run_sweep,
)
from repro.analytic.calibration import pool_sweeps
from repro.analytic.surrogate import (
    UnsupportedProtocolError,
    resolve_meeting_rate,
    transmission_coins,
)

PROTOS = [
    make_protocol_config("pq", p=1.0, q=1.0),
    make_protocol_config("ttl", ttl=300.0),
    make_protocol_config("ec"),
    make_protocol_config("immunity"),
    make_protocol_config("dynamic_ttl"),
    make_protocol_config("ec_ttl"),
    make_protocol_config("cumulative_immunity"),
]

#: Columns of the per-row console table (a subset of each result row).
TABLE_COLUMNS = (
    "config",
    "protocol",
    "load",
    "delivery_ratio",
    "delay_s",
    "buffer_occupancy",
    "duplication_rate",
)


def evaluate(
    tag: str, params: dict[str, object], trace  # type: ignore[no-untyped-def]
) -> dict[str, object]:
    """Sweep one candidate config; return its report section."""
    st = compute_trace_stats(trace)
    print(
        f"--- {tag}: contacts={st.num_contacts} node-gap-med={st.intercontact_node.median:.0f}"
        f" pair-gap-med={st.intercontact_pair.median:.0f} dur-med={st.durations.median:.0f}"
    )
    t0 = time.time()
    res = run_sweep(
        trace, PROTOS, SweepConfig(loads=(5, 30, 50), replications=6, master_seed=7)
    )
    elapsed = time.time() - t0
    series = {
        "delivery_ratio": res.delivery_ratio_series(),
        "delay_s": res.delay_series(),
        "buffer_occupancy": res.buffer_occupancy_series(),
        "duplication_rate": res.duplication_series(),
    }
    rows: list[dict[str, object]] = []
    labels = [s.label for s in series["delivery_ratio"]]
    for label in labels:
        per_metric = {
            metric: next(s for s in curves if s.label == label)
            for metric, curves in series.items()
        }
        for i, load in enumerate(per_metric["delivery_ratio"].loads):
            values = {
                # delay is NaN when no replication succeeded — strict-JSON
                # null, not a bare NaN token
                metric: round(v, 4) if v == v else None
                for metric, curve in per_metric.items()
                for v in (curve.values[i],)
            }
            rows.append({"config": tag, "protocol": label, "load": load, **values})
    print(summary_table(rows, TABLE_COLUMNS))
    print(f"  ({elapsed:.1f}s)")
    return {
        "config": tag,
        "params": params,
        "trace_stats": {
            "num_contacts": st.num_contacts,
            "intercontact_node_median": st.intercontact_node.median,
            "intercontact_pair_median": st.intercontact_pair.median,
            "duration_median": st.durations.median,
        },
        "sweep_wall_s": round(elapsed, 2),
        "calibration": surrogate_residuals(trace, res),
        "rows": rows,
    }


def surrogate_residuals(trace, des: SweepResult) -> dict[str, object]:  # type: ignore[no-untyped-def]
    """Analytic-surrogate calibration block for one candidate config.

    Reports the meeting rate β̂ the surrogate would calibrate from this
    trace and, for the surrogate-supported subset of ``PROTOS``, the
    per-(protocol, metric) pooled residuals against the DES sweep just
    run — so a calibration report states how far the mean-field model is
    from this substrate, not only what the DES measured.
    """
    supported = []
    for proto in PROTOS:
        try:
            transmission_coins(proto)
        except UnsupportedProtocolError:
            continue
        supported.append(proto)
    block: dict[str, object] = {
        "supported_protocols": [p.label for p in supported],
        "beta_estimate": None,
        "residuals": [],
    }
    try:
        beta = resolve_meeting_rate(trace, SimulationConfig())
    except ValueError:
        return block  # no contact can carry a bundle — nothing to calibrate
    block["beta_estimate"] = beta
    if not supported:
        return block
    ode = run_sweep(
        trace,
        supported,
        SweepConfig(
            loads=(5, 30, 50),
            replications=6,
            master_seed=7,
            sim=SimulationConfig(engine="ode"),
        ),
    )
    labels = {p.label for p in supported}
    des_subset = SweepResult(runs=[r for r in des.runs if r.protocol_label in labels])
    block["residuals"] = [r.to_dict() for r in pool_sweeps(des_subset, ode)]
    return block


def campus() -> list[dict[str, object]]:
    sections = []
    for mean_ic, sigma, het, dmed in [
        (24_000, 1.0, 0.2, 100.0),
        (24_000, 1.0, 0.2, 90.0),
        (18_000, 1.0, 0.2, 80.0),
    ]:
        params = dict(
            mean_intercontact=mean_ic,
            intercontact_sigma=sigma,
            heterogeneity_sigma=het,
            duration_median=dmed,
        )
        cfg = CampusTraceConfig(
            mean_intercontact=mean_ic,
            intercontact_sigma=sigma,
            heterogeneity_sigma=het,
            duration_median=dmed,
            duration_sigma=0.9,
            max_duration=2_000.0,
            min_duration=20.0,
        )
        trace = CampusTraceGenerator(cfg, seed=7).generate()
        tag = f"campus ic={mean_ic} s={sigma} het={het} dmed={dmed}"
        sections.append(evaluate(tag, params, trace))
    return sections


def rwp() -> list[dict[str, object]]:
    sections = []
    for comm, pts, travel in [
        (40.0, 80, 900.0),
        (30.0, 80, 900.0),
        (40.0, 60, 1_200.0),
    ]:
        params = dict(comm_range=comm, num_subscriber_points=pts, max_travel_time=travel)
        cfg = RWPConfig(
            comm_range=comm, num_subscriber_points=pts, max_travel_time=travel
        )
        trace = SubscriberPointRWP(cfg, seed=7).generate()
        tag = f"rwp range={comm} pts={pts} travel={travel}"
        sections.append(evaluate(tag, params, trace))
    return sections


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("which", nargs="?", choices=("campus", "rwp"), default="campus")
    parser.add_argument(
        "--out",
        default="CALIBRATION.json",
        help="JSON report path (bench_common envelope; default CALIBRATION.json)",
    )
    args = parser.parse_args(argv)
    sections = {"campus": campus, "rwp": rwp}[args.which]()
    report = report_envelope(
        "mobility_calibration",
        substrate=args.which,
        seed=7,
        loads=[5, 30, 50],
        replications=6,
        results=[row for section in sections for row in section["rows"]],
        configs=[
            {k: v for k, v in section.items() if k != "rows"} for section in sections
        ],
    )
    write_report(args.out, report)
    print(f"report written to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
