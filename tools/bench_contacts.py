#!/usr/bin/env python3
"""Contact-extraction benchmark: vectorized vs scalar engine.

Generates subscriber-point RWP trajectory sets at increasing population
sizes, times :func:`repro.mobility.trajectory.contacts_from_trajectories`
with the vectorized ``fast`` engine and (up to a per-scale node cap) the
scalar ``exact`` reference, verifies the two traces agree, and writes the
wall-times to a JSON report — the perf trajectory CI tracks over time.

Usage:
    PYTHONPATH=src python tools/bench_contacts.py --scale smoke
    PYTHONPATH=src python tools/bench_contacts.py --scale gate --verify
    PYTHONPATH=src python tools/bench_contacts.py --scale full --out bench.json

``--verify`` turns the run into an equivalence gate: every population is
extracted with both engines and the process exits non-zero if any contact
window diverges by more than ``--tolerance`` seconds (or the traces differ
structurally).
"""

from __future__ import annotations

import argparse
import math
import sys
import time
from dataclasses import dataclass

try:
    from bench_common import report_envelope, write_report
except ImportError:  # loaded by file path (tests) rather than from tools/
    import sys as _sys
    from pathlib import Path as _Path

    _sys.path.insert(0, str(_Path(__file__).resolve().parent))
    from bench_common import report_envelope, write_report

from repro.mobility.contact import Contact, ContactTrace
from repro.mobility.rwp import RWPConfig, SubscriberPointRWP
from repro.mobility.trajectory import contacts_from_trajectories


@dataclass(frozen=True)
class BenchScale:
    """One benchmark tier: populations, trace horizon, scalar-engine cap."""

    nodes: tuple[int, ...]
    horizon: float
    exact_max: int  #: run the scalar reference only up to this population


SCALES: dict[str, BenchScale] = {
    # equivalence gate: exact on every population, modest sizes
    "gate": BenchScale(nodes=(12, 40, 80), horizon=40_000.0, exact_max=80),
    # CI perf job: scalar reference at every population (a full speedup
    # curve, dominated by the n=200 scalar run)
    "smoke": BenchScale(nodes=(25, 50, 100, 200), horizon=20_000.0, exact_max=200),
    "quick": BenchScale(nodes=(50, 100, 200, 400), horizon=40_000.0, exact_max=200),
    "full": BenchScale(
        nodes=(100, 200, 400, 800, 1600), horizon=40_000.0, exact_max=400
    ),
}


def trace_divergence(a: ContactTrace, b: ContactTrace) -> float:
    """Worst-case window divergence between two traces, in seconds.

    Returns ``inf`` when the traces differ structurally (population,
    contact count, or per-pair window counts).
    """
    if a.num_nodes != b.num_nodes or len(a) != len(b):
        return math.inf

    def by_pair(trace: ContactTrace) -> dict[tuple[int, int], list[Contact]]:
        out: dict[tuple[int, int], list[Contact]] = {}
        for c in trace:
            out.setdefault(c.pair, []).append(c)
        return out

    pa, pb = by_pair(a), by_pair(b)
    if pa.keys() != pb.keys():
        return math.inf
    worst = 0.0
    for pair, ca in pa.items():
        cb = pb[pair]
        if len(ca) != len(cb):
            return math.inf
        for x, y in zip(ca, cb, strict=True):
            worst = max(worst, abs(x.start - y.start), abs(x.end - y.end))
    return worst


def bench_population(
    num_nodes: int, horizon: float, seed: int, *, run_exact: bool
) -> dict[str, object]:
    """Extract one population's contacts with both engines and time them."""
    cfg = RWPConfig(num_nodes=num_nodes, horizon=horizon)
    trajectories = SubscriberPointRWP(cfg, seed=seed).generate_trajectories()
    segments = sum(len(t.segments) for t in trajectories)

    def run(engine: str) -> tuple[ContactTrace, float]:
        t0 = time.perf_counter()
        trace = contacts_from_trajectories(
            trajectories,
            cfg.comm_range,
            contact_cap=cfg.contact_cap,
            horizon=cfg.horizon,
            engine=engine,
        )
        return trace, time.perf_counter() - t0

    fast_trace, fast_s = run("fast")
    row: dict[str, object] = {
        "nodes": num_nodes,
        "segments": segments,
        "contacts": len(fast_trace),
        "fast_s": round(fast_s, 4),
        "exact_s": None,
        "speedup": None,
        "max_divergence_s": None,
    }
    if run_exact:
        exact_trace, exact_s = run("exact")
        row["exact_s"] = round(exact_s, 4)
        row["speedup"] = round(exact_s / fast_s, 2) if fast_s > 0 else math.inf
        row["max_divergence_s"] = trace_divergence(exact_trace, fast_trace)
    return row


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=sorted(SCALES), default="smoke")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--out", default="BENCH_contacts.json", help="JSON report path"
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="equivalence gate: run the exact engine on every population "
        "and fail on divergence beyond --tolerance",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=1e-6,
        help="max permitted window divergence in seconds (default: 1e-6)",
    )
    args = parser.parse_args(argv)

    scale = SCALES[args.scale]
    print(
        f"contact-extraction benchmark: scale={args.scale} seed={args.seed} "
        f"horizon={scale.horizon:.0f}s nodes={list(scale.nodes)}"
    )
    rows = []
    failed = False
    for n in scale.nodes:
        run_exact = args.verify or n <= scale.exact_max
        row = bench_population(n, scale.horizon, args.seed, run_exact=run_exact)
        rows.append(row)
        div = row["max_divergence_s"]
        if run_exact and (div is None or not div <= args.tolerance):
            failed = True
        exact_s = f"{row['exact_s']:8.2f}s" if row["exact_s"] is not None else "       —"
        speedup = f"×{row['speedup']:.1f}" if row["speedup"] is not None else "—"
        div_txt = f"{div:.2e}s" if div is not None else "—"
        print(
            f"  n={n:>5}  segments={row['segments']:>7}  contacts={row['contacts']:>8}  "
            f"fast {row['fast_s']:8.2f}s  exact {exact_s}  speedup {speedup:>6}  "
            f"divergence {div_txt}"
        )

    report = report_envelope(
        "contact_extraction",
        scale=args.scale,
        seed=args.seed,
        horizon_s=scale.horizon,
        mobility="rwp-subscriber",
        tolerance_s=args.tolerance,
        results=rows,
    )
    write_report(args.out, report)
    print(f"report written to {args.out}")

    if failed:
        print(
            f"ERROR: engines diverge beyond {args.tolerance:g}s "
            "(see max_divergence_s above)",
            file=sys.stderr,
        )
        return 1
    if args.verify:
        print(f"equivalence check: all windows within {args.tolerance:g}s ✓")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
