#!/usr/bin/env python3
"""Kill/resume equivalence gate for checkpointed sweep campaigns.

The acceptance property of the checkpoint journal
(:mod:`repro.core.checkpoint`): a campaign killed mid-flight and resumed
with ``--resume`` must export **byte-identical** artefacts to an
uninterrupted run. This harness drives the real CLI in subprocesses:

1. start ``run-scenario --checkpoint CAMP --jobs 2`` on the smoke
   scenario, poll the journal, and SIGKILL the process once a few cells
   are durably recorded (no graceful shutdown — a real crash);
2. re-run the same command with ``--resume --out``, which restores the
   journaled cells and executes only the missing ones;
3. run an uninterrupted reference with ``--out`` into a separate
   directory and byte-compare the exported runs CSV.

If the campaign finishes before the kill lands, the check degrades
gracefully: the resume pass then restores *every* cell from the journal,
which exercises the same round-trip property.

Usage:
    PYTHONPATH=src python tools/check_resume.py
    PYTHONPATH=src python tools/check_resume.py --scenario path.json --kill-after 3
"""

from __future__ import annotations

import argparse
import json
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_SCENARIO = REPO_ROOT / "examples" / "scenarios" / "resume_smoke.json"


def _cli(*args: str) -> list[str]:
    return [sys.executable, "-m", "repro", *args]


def _journal_records(campaign: Path) -> int:
    journal = campaign / "journal.jsonl"
    if not journal.exists():
        return 0
    # only complete (newline-terminated) records count as durable
    return journal.read_bytes().count(b"\n")


def _kill_mid_flight(
    scenario: Path, campaign: Path, *, kill_after: int, timeout: float
) -> bool:
    """Start a checkpointed campaign and SIGKILL it once the journal holds
    ``kill_after`` records. Returns True if the kill landed mid-flight."""
    proc = subprocess.Popen(
        _cli(
            "run-scenario",
            str(scenario),
            "--checkpoint",
            str(campaign),
            "--jobs",
            "2",
        ),
        cwd=REPO_ROOT,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + timeout
    try:
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                print(
                    f"note: campaign finished (rc={proc.returncode}) before "
                    f"the kill; resume will restore all cells from the journal"
                )
                return False
            if _journal_records(campaign) >= kill_after:
                proc.send_signal(signal.SIGKILL)
                proc.wait(timeout=30)
                print(
                    f"killed campaign with {_journal_records(campaign)} "
                    f"journaled cell(s)"
                )
                return True
            time.sleep(0.05)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)
    raise SystemExit(f"campaign did not journal {kill_after} cells in {timeout}s")


def _run_checked(argv: list[str]) -> None:
    result = subprocess.run(argv, cwd=REPO_ROOT)
    if result.returncode != 0:
        raise SystemExit(f"command failed (rc={result.returncode}): {argv}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scenario",
        type=Path,
        default=DEFAULT_SCENARIO,
        help="scenario JSON to run (default: the resume smoke scenario)",
    )
    parser.add_argument(
        "--kill-after",
        type=int,
        default=4,
        metavar="N",
        help="SIGKILL the campaign once N cells are journaled (default 4)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=600.0,
        help="seconds to wait for the journal to reach --kill-after",
    )
    args = parser.parse_args(argv)

    spec = json.loads(args.scenario.read_text(encoding="utf-8"))
    stem = spec.get("name", args.scenario.stem)

    with tempfile.TemporaryDirectory(prefix="check_resume.") as tmp:
        work = Path(tmp)
        campaign = work / "campaign"
        resumed_out = work / "resumed"
        reference_out = work / "reference"

        _kill_mid_flight(
            args.scenario,
            campaign,
            kill_after=args.kill_after,
            timeout=args.timeout,
        )

        _run_checked(
            _cli(
                "run-scenario",
                str(args.scenario),
                "--checkpoint",
                str(campaign),
                "--resume",
                "--jobs",
                "2",
                "--out",
                str(resumed_out),
            )
        )
        _run_checked(
            _cli(
                "run-scenario",
                str(args.scenario),
                "--out",
                str(reference_out),
            )
        )

        mismatches = []
        compared = 0
        for ref_file in sorted(reference_out.iterdir()):
            res_file = resumed_out / ref_file.name
            if not res_file.exists():
                mismatches.append(f"{ref_file.name}: missing from resumed run")
                continue
            compared += 1
            if ref_file.read_bytes() != res_file.read_bytes():
                mismatches.append(f"{ref_file.name}: differs from reference")
        if not compared:
            mismatches.append(f"no artefacts exported for scenario {stem!r}")
        if mismatches:
            print("RESUME EQUIVALENCE FAILED:", file=sys.stderr)
            for line in mismatches:
                print(f"  {line}", file=sys.stderr)
            return 1
        print(
            f"resume equivalence OK: {compared} artefact(s) byte-identical "
            "after kill + --resume"
        )
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
