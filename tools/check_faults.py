#!/usr/bin/env python3
"""Equivalence gates for the disruption model (:mod:`repro.faults`).

Two acceptance properties of fault injection, checked on the churn
scenario's real sweep grid:

1. **Zero-cost-when-off** — a scenario whose fault spec is *trivial*
   (all rates and probabilities zero) must produce byte-identical
   results to (a) the same scenario with no fault spec at all, on the
   default batched fast path, and (b) the per-event reference schedule
   (``batch_degenerate=False``). Turning the subsystem on but injecting
   nothing may not perturb a single byte of any run record.

2. **Faulted determinism** — the scenario's real (non-trivial) fault
   spec must produce byte-identical results under the serial and the
   parallel executor: every cell's fault environment derives from its
   own grid coordinates, so fan-out order cannot leak into results.

3. **Kernel refusal at load time** — forcing ``kernel="soa"`` onto the
   faulted scenario must be rejected when the spec is *built* (the sweep
   kernel has no disruption machinery), with an actionable error — not
   accepted and left to explode mid-campaign.

Each comparison serialises every :meth:`RunResult.to_dict` to canonical
JSON and byte-compares, so any drift — a float ulp, a new counter, a
reordered record — fails loudly.

Usage:
    PYTHONPATH=src python tools/check_faults.py
    PYTHONPATH=src python tools/check_faults.py --scenario path.json --jobs 4
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_SCENARIO = REPO_ROOT / "examples" / "scenarios" / "churn_resilience.json"


def _encode(runs: list[object]) -> list[bytes]:
    """Canonical per-run byte encodings of a sweep's results."""
    return [
        json.dumps(r.to_dict(), sort_keys=True, allow_nan=False).encode()
        for r in runs  # type: ignore[attr-defined]
    ]


def _diff(label: str, ref: list[bytes], got: list[bytes]) -> list[str]:
    problems: list[str] = []
    if len(ref) != len(got):
        problems.append(f"{label}: {len(got)} runs, expected {len(ref)}")
        return problems
    for i, (a, b) in enumerate(zip(ref, got)):
        if a != b:
            problems.append(f"{label}: run {i} differs")
    return problems


def check_zero_fault(spec, jobs: int) -> list[str]:
    """Trivial spec ≡ no spec ≡ per-event reference schedule."""
    from repro.core.sweep import run_single
    from repro.core.simulation import Simulation, SimulationConfig
    from repro.core.workload import single_flow
    from repro.des.rng import derive_seed
    from repro.faults import FaultSpec

    import numpy as np

    plain = dataclasses.replace(spec, faults=None)
    trivial = dataclasses.replace(spec, faults=FaultSpec())
    ref = _encode(plain.run(jobs=jobs).runs)
    problems = _diff("trivial-vs-none", ref, _encode(trivial.run(jobs=jobs).runs))

    # Reference schedule: re-run every cell unbatched, in grid order.
    sweep = plain.sweep_config()
    trace = plain.build_trace()
    unbatched: list[object] = []
    for protocol in plain.build_protocols():
        for load in sweep.loads:
            for rep in range(sweep.replications):
                endpoint_rng = np.random.default_rng(
                    derive_seed(sweep.master_seed, "workload", load, rep)
                )
                flows = single_flow(trace.num_nodes, load, endpoint_rng)
                run_seed = int(
                    derive_seed(
                        sweep.master_seed, "run", protocol.protocol_name, load, rep
                    ).generate_state(1)[0]
                )
                sim = Simulation(
                    trace,
                    protocol,
                    flows,
                    config=sweep.sim,
                    seed=run_seed,
                    batch_degenerate=False,
                )
                unbatched.append(sim.run())
    problems += _diff("batched-vs-reference", ref, _encode(unbatched))
    return problems


def check_faulted_parallel(spec, jobs: int) -> list[str]:
    """Non-trivial spec: serial ≡ parallel, and runs really are faulted."""
    serial = _encode(spec.run().runs)
    parallel = _encode(spec.run(jobs=jobs).runs)
    problems = _diff("serial-vs-parallel", serial, parallel)
    if not any(b"churn" in raw for raw in serial):
        problems.append(
            "faulted scenario produced no churn counters — the fault spec "
            "did not reach the engine"
        )
    return problems


def check_soa_refused_at_load(spec) -> list[str]:
    """``kernel="soa"`` + non-trivial faults must fail at spec build."""
    try:
        dataclasses.replace(spec, kernel="soa")
    except ValueError as exc:
        message = str(exc)
        if "fault" not in message:
            return [
                "soa-vs-faults refusal raised, but the error does not name "
                f"fault injection as the cause: {message!r}"
            ]
        return []
    return [
        'kernel="soa" with a non-trivial fault spec was accepted at '
        "spec-load time; it must be refused there, not mid-run"
    ]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scenario",
        type=Path,
        default=DEFAULT_SCENARIO,
        help="faulted scenario JSON (default: the churn-resilience scenario)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=2,
        metavar="N",
        help="worker processes for the parallel passes (default 2)",
    )
    args = parser.parse_args(argv)

    from repro.scenarios import ScenarioSpec

    spec = ScenarioSpec.load(args.scenario)
    if spec.faults is None or spec.faults.is_trivial:
        raise SystemExit(
            f"scenario {spec.name!r} carries no non-trivial fault spec; "
            "this gate needs one to exercise the disruption model"
        )

    problems = check_soa_refused_at_load(spec)
    problems += check_zero_fault(spec, args.jobs)
    problems += check_faulted_parallel(spec, args.jobs)
    if problems:
        print("FAULT EQUIVALENCE FAILED:", file=sys.stderr)
        for line in problems:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(
        "fault equivalence OK: trivial spec byte-identical to the unfaulted "
        "batched and reference schedules; faulted sweep byte-identical "
        'serial vs parallel; kernel="soa" refused at spec-load time'
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
