"""Shared benchmark plumbing: JSON reports and baseline regression gates.

Every ``tools/bench_*.py`` script emits the same report envelope (benchmark
name, parameters, a ``generated_at`` stamp, and a ``results`` table) and the
perf CI job compares fresh measurements against a baseline committed to the
repository. This module owns that boilerplate so the individual benchmarks
only describe *what* they measure.

A report is a plain dict; :func:`write_report` wraps it in the envelope and
writes pretty-printed JSON. :func:`compare_to_baseline` matches result rows
between a fresh report and a baseline by a key function and fails rows whose
throughput metric regressed beyond a tolerance — wall-clock on shared CI
runners is noisy, so gates should use a generous margin (the perf job uses
25%) and smoke-sized workloads.
"""

from __future__ import annotations

import json
import time
from collections.abc import Callable, Iterable, Mapping, Sequence

Row = Mapping[str, object]


def report_envelope(benchmark: str, **params: object) -> dict[str, object]:
    """The common header every benchmark report starts from."""
    payload: dict[str, object] = {"benchmark": benchmark}
    payload.update(params)
    payload["generated_at"] = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    return payload


def write_report(path: str, payload: Mapping[str, object]) -> None:
    """Write a report as pretty-printed JSON with a trailing newline."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")


def load_report(path: str) -> dict[str, object]:
    """Read a report previously written by :func:`write_report`."""
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def compare_to_baseline(
    current: Iterable[Row],
    baseline: Iterable[Row],
    *,
    key: Callable[[Row], object],
    metric: str,
    max_regression: float,
    higher_is_better: bool = True,
    normalize_machine_speed: bool = True,
) -> list[str]:
    """Compare result rows against a baseline; return regression messages.

    Rows are matched by ``key``; rows present on only one side are skipped
    (smoke runs gate against a subset of the committed full-scale report).
    A row regresses when its ``metric`` is worse than the baseline by more
    than ``max_regression`` (fractional, e.g. 0.25 = 25%).

    With ``normalize_machine_speed`` (the default), each row's
    current/baseline ratio is first divided by the **median ratio across
    all matched rows**: a committed baseline is measured on whatever
    machine produced it, and CI runners are uniformly slower or faster
    plus noisy — the median cancels that common factor, so the gate
    trips on *relative* regressions (one code path getting slower than
    its peers) rather than on hardware differences. The trade-off: a
    perfectly uniform slowdown across every cell is absorbed into the
    normalization — the absolute trajectory is tracked via the uploaded
    report artifacts instead. Pass ``normalize_machine_speed=False`` for
    strict same-machine comparisons.

    Returns:
        Human-readable messages, one per regressed row; empty when clean.
    """
    if not (0.0 <= max_regression < 1.0):
        raise ValueError(f"max_regression must be in [0, 1), got {max_regression}")
    base_by_key = {key(row): row for row in baseline}
    matched: list[tuple[object, float, float, float]] = []
    for row in current:
        base = base_by_key.get(key(row))
        if base is None:
            continue
        cur_v = row.get(metric)
        base_v = base.get(metric)
        if not isinstance(cur_v, (int, float)) or not isinstance(base_v, (int, float)):
            continue
        if base_v <= 0 or cur_v <= 0:
            continue
        ratio = cur_v / base_v if higher_is_better else base_v / cur_v
        matched.append((key(row), float(cur_v), float(base_v), ratio))
    if not matched:
        return []
    speed = 1.0
    if normalize_machine_speed:
        ratios = sorted(r for _, _, _, r in matched)
        mid = len(ratios) // 2
        speed = (
            ratios[mid]
            if len(ratios) % 2
            else (ratios[mid - 1] + ratios[mid]) / 2.0
        )
        if speed <= 0:
            speed = 1.0
    failures: list[str] = []
    floor = 1.0 - max_regression
    for row_key, cur_v, base_v, ratio in matched:
        relative = ratio / speed
        if relative < floor:
            failures.append(
                f"{row_key}: {metric} {cur_v:g} vs baseline {base_v:g} "
                f"({1.0 - relative:+.0%} below peers after ×{speed:.2f} "
                f"machine-speed normalization; tolerance {max_regression:.0%})"
            )
    return failures


def median_metric_ratio(
    current: Iterable[Row],
    baseline: Iterable[Row],
    *,
    key: Callable[[Row], object],
    metric: str,
) -> float | None:
    """Median current/baseline ratio of ``metric`` over matched rows.

    This is the machine-speed factor :func:`compare_to_baseline` normalizes
    by. Gate callers should *report* it: the relative gate is blind to a
    perfectly uniform slowdown by construction, so a conspicuously low
    median on known-comparable hardware is the signal worth a human look.
    """
    base_by_key = {key(row): row for row in baseline}
    ratios: list[float] = []
    for row in current:
        base = base_by_key.get(key(row))
        if base is None:
            continue
        cur_v = row.get(metric)
        base_v = base.get(metric)
        if (
            isinstance(cur_v, (int, float))
            and isinstance(base_v, (int, float))
            and base_v > 0
            and cur_v > 0
        ):
            ratios.append(cur_v / base_v)
    if not ratios:
        return None
    ratios.sort()
    mid = len(ratios) // 2
    if len(ratios) % 2:
        return ratios[mid]
    return (ratios[mid - 1] + ratios[mid]) / 2.0


def format_rate(value: float) -> str:
    """Compact human rendering for events/sec style rates."""
    if value >= 1e6:
        return f"{value / 1e6:.2f}M"
    if value >= 1e3:
        return f"{value / 1e3:.1f}k"
    return f"{value:.1f}"


def summary_table(rows: Sequence[Row], columns: Sequence[str]) -> str:
    """Fixed-width text table of selected report columns (for CI logs)."""
    widths = [
        max(len(c), *(len(str(r.get(c, ""))) for r in rows)) if rows else len(c)
        for c in columns
    ]
    header = "  ".join(c.ljust(w) for c, w in zip(columns, widths, strict=True))
    lines = [header, "  ".join("-" * w for w in widths)]
    for r in rows:
        lines.append(
            "  ".join(str(r.get(c, "")).ljust(w) for c, w in zip(columns, widths, strict=True))
        )
    return "\n".join(lines)
