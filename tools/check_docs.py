#!/usr/bin/env python3
"""Markdown link and anchor checker for the documentation suite.

Walks every markdown file it is given (default: README.md and docs/*.md),
extracts inline links, and verifies that

* relative file links resolve to an existing file in the repository, and
* fragment links (``#section`` or ``file.md#section``) match a heading in
  the target file under GitHub's slugification rules.

External ``http(s)``/``mailto`` links are skipped — CI must not depend on
the network. Exits 1 listing every broken link.

Usage:
    python tools/check_docs.py                 # README.md + docs/*.md
    python tools/check_docs.py docs/foo.md     # explicit file list
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline markdown links: [text](target). Images share the syntax.
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
_CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading line.

    Lowercase, markup stripped, spaces to hyphens, punctuation dropped.
    Good enough for ASCII docs; duplicate-heading ``-1`` suffixes are not
    modelled (the checker treats any duplicate slug as present).
    """
    text = re.sub(r"[`*_]", "", heading.strip())
    # [text](target) renders as just the text
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(path: Path) -> set[str]:
    """All heading anchors defined by ``path`` (code fences excluded)."""
    slugs: set[str] = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = _HEADING_RE.match(line)
        if m:
            slugs.add(github_slug(m.group(2)))
    return slugs


def iter_links(path: Path) -> list[str]:
    """Inline link targets in ``path``, code fences excluded."""
    targets: list[str] = []
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        targets.extend(m.group(1) for m in _LINK_RE.finditer(line))
    return targets


def _display(path: Path) -> str:
    try:
        return str(path.relative_to(REPO_ROOT))
    except ValueError:  # outside the repo (tests, ad-hoc invocations)
        return str(path)


def check_file(path: Path) -> list[str]:
    """Broken-link descriptions for one markdown file."""
    problems: list[str] = []
    for target in iter_links(path):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        base, _, fragment = target.partition("#")
        dest = path if not base else (path.parent / base).resolve()
        if base and not dest.exists():
            problems.append(f"{_display(path)}: missing file {target!r}")
            continue
        if fragment:
            if dest.suffix.lower() not in (".md", ".markdown"):
                continue  # anchors into source files are line refs, not slugs
            if fragment.lower() not in heading_slugs(dest):
                problems.append(
                    f"{_display(path)}: no heading for anchor {target!r}"
                )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "files",
        nargs="*",
        type=Path,
        help="markdown files to check (default: README.md and docs/*.md)",
    )
    args = parser.parse_args(argv)
    files = args.files or [
        REPO_ROOT / "README.md",
        *sorted((REPO_ROOT / "docs").glob("*.md")),
    ]
    problems: list[str] = []
    for path in files:
        if not path.exists():
            problems.append(f"{path}: file does not exist")
            continue
        problems.extend(check_file(path))
    if problems:
        print("\n".join(problems))
        print(f"\n{len(problems)} broken link(s)")
        return 1
    print(f"checked {len(files)} file(s): all links resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
